//! Subgraph extraction and matching (§3.1–§3.4).
//!
//! A *subgraph* of a δ-partitioning is a connected component of the binary
//! tree after removing the bridging edges, **plus** the bridging edges
//! incident to it (Definition 1). For matching we store, per component
//! node, the labels and whether each child pointer leads inside the
//! component, across a bridging edge, or nowhere.
//!
//! Matching enforces labels, component structure, bridging-edge existence
//! and — under the default [`MatchSemantics::Exact`] — the *absence* of
//! children where the component has neither a child nor a bridge. Both
//! semantics are sound for Lemma 2 (an untouched subgraph keeps its exact
//! edge structure; any operation granting one of its nodes a child would
//! have changed it), and the paper's Figure 7 remark that "the grandchild
//! of N is not relevant to this matching" is consistent with the
//! grandchild hanging below a *bridge* slot, whose subtree is always
//! unconstrained. The weaker [`MatchSemantics::Embedding`] exists for the
//! matching-semantics ablation.

use crate::config::MatchSemantics;
use tsj_tree::{pack_twig, BinaryTree, Label, NodeId, Side};

/// Index of a tree within the joined collection (re-exported convention
/// from `tsj_ted::outcome`).
pub type TreeIdx = u32;

/// What hangs off one side of a component node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChildKind {
    /// No child and no bridging edge: unconstrained in embedding matching.
    Absent,
    /// The child belongs to the same component; structure is enforced
    /// recursively.
    Component,
    /// A bridging edge of the δ-partitioning: the matched node must have
    /// *some* child on this side (its label belongs to another subgraph).
    Bridge,
}

/// One component node: its label and the kinds of its two children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SgNode {
    /// Node label.
    pub label: Label,
    /// Left (first-child) side.
    pub left: ChildKind,
    /// Right (next-sibling) side.
    pub right: ChildKind,
}

/// A subgraph of a δ-partitioning, ready for indexing and matching.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Container tree index within the joined collection.
    pub tree: TreeIdx,
    /// 1-based ordinal `k` in greedy-discovery (binary postorder of root)
    /// order; the paper's `s_k`.
    pub ordinal: u16,
    /// The subgraph root node in the container tree (ids are shared
    /// between the general tree and its LC-RS representation).
    pub root: NodeId,
    /// `p_k`: 1-based postorder number of the subgraph root in the
    /// container *general* tree — the edit-stable coordinate of the
    /// postorder-pruning layer (see `WindowPolicy` for why general, not
    /// binary, postorder must be used).
    pub root_post: u32,
    /// Suffix position `n − p_k` (nodes after the root in general
    /// postorder).
    pub suffix: u32,
    /// Which parent pointer the root hangs from; `None` for the subgraph
    /// containing the tree root.
    pub incoming: Option<Side>,
    /// Packed label twig of the root: `(label, left component child label
    /// or ε, right component child label or ε)` — the layer-2 index key.
    pub twig: u64,
    /// Component nodes in preorder (node, left subtree, right subtree).
    pub nodes: Box<[SgNode]>,
}

impl Subgraph {
    /// Number of component nodes.
    pub fn component_size(&self) -> usize {
        self.nodes.len()
    }
}

/// Builds the subgraphs induced by cutting the parent edges of `cuts`.
///
/// `cuts` must be non-root nodes in strictly ascending binary postorder
/// (as produced by `partition::select_cuts`); `general_post` maps node ids
/// to 1-based postorder numbers of the container *general* tree
/// ([`tsj_tree::Tree::postorder_numbers`]). The result contains
/// `cuts.len() + 1` subgraphs in discovery order; the last one contains
/// the tree root.
pub fn build_subgraphs(
    binary: &BinaryTree,
    general_post: &[u32],
    cuts: &[NodeId],
    tree: TreeIdx,
) -> Vec<Subgraph> {
    debug_assert!(cuts
        .windows(2)
        .all(|w| binary.post_of(w[0]) < binary.post_of(w[1])));
    debug_assert!(cuts.iter().all(|&c| c != binary.root()));

    let mut is_cut = vec![false; binary.len()];
    for &c in cuts {
        is_cut[c.index()] = true;
    }

    let n = binary.len() as u32;
    let mut subgraphs = Vec::with_capacity(cuts.len() + 1);
    for (pos, &root) in cuts
        .iter()
        .chain(std::iter::once(&binary.root()))
        .enumerate()
    {
        let nodes = collect_component(binary, root, &is_cut);
        let root_node = nodes[0];
        let left_label = component_child_label(binary, root, Side::Left, root_node.left);
        let right_label = component_child_label(binary, root, Side::Right, root_node.right);
        let post = general_post[root.index()];
        subgraphs.push(Subgraph {
            tree,
            ordinal: pos as u16 + 1,
            root,
            root_post: post,
            suffix: n - post,
            incoming: binary.side(root),
            twig: pack_twig(root_node.label, left_label, right_label),
            nodes: nodes.into_boxed_slice(),
        });
    }
    subgraphs
}

fn component_child_label(binary: &BinaryTree, node: NodeId, side: Side, kind: ChildKind) -> Label {
    match kind {
        ChildKind::Component => {
            let child = binary.child(node, side).expect("component child exists");
            binary.label(child)
        }
        _ => Label::EPSILON,
    }
}

/// Collects the component rooted at `root` (stopping at cut nodes) in
/// preorder, recording child kinds.
fn collect_component(binary: &BinaryTree, root: NodeId, is_cut: &[bool]) -> Vec<SgNode> {
    let mut nodes = Vec::new();
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        let classify = |child: Option<NodeId>| match child {
            None => ChildKind::Absent,
            Some(c) if is_cut[c.index()] => ChildKind::Bridge,
            Some(_) => ChildKind::Component,
        };
        let left = classify(binary.left(v));
        let right = classify(binary.right(v));
        nodes.push(SgNode {
            label: binary.label(v),
            left,
            right,
        });
        // Preorder: push right first so the left subtree is emitted next.
        if right == ChildKind::Component {
            stack.push(binary.right(v).expect("component right child"));
        }
        if left == ChildKind::Component {
            stack.push(binary.left(v).expect("component left child"));
        }
    }
    nodes
}

/// Match under the default [`MatchSemantics::Exact`]: does `sg` appear in
/// `binary` rooted at `node`?
pub fn subgraph_matches(sg: &Subgraph, binary: &BinaryTree, node: NodeId) -> bool {
    subgraph_matches_with(sg, binary, node, MatchSemantics::Exact)
}

/// Matches `sg` at `node` under the given semantics.
///
/// Checks the incoming bridging edge, then walks the component preorder in
/// lockstep with the tree: labels and component/bridge slots are always
/// enforced; `Absent` slots are enforced only under
/// [`MatchSemantics::Exact`]. `O(component size)`.
pub fn subgraph_matches_with(
    sg: &Subgraph,
    binary: &BinaryTree,
    node: NodeId,
    semantics: MatchSemantics,
) -> bool {
    let mut stack = Vec::new();
    nodes_match_at(&sg.nodes, sg.incoming, binary, node, semantics, &mut stack)
}

/// Slice form of [`subgraph_matches_with`]: matches a component given as a
/// preorder [`SgNode`] slice (e.g. straight out of the index's contiguous
/// arena) with its incoming side. `stack` is caller-owned scratch —
/// cleared on entry — so repeated match attempts allocate nothing.
pub fn nodes_match_at(
    nodes: &[SgNode],
    incoming: Option<Side>,
    binary: &BinaryTree,
    node: NodeId,
    semantics: MatchSemantics,
    stack: &mut Vec<NodeId>,
) -> bool {
    if let Some(side) = incoming {
        if binary.side(node) != Some(side) {
            return false;
        }
    }
    // Cheap rejection: the component cannot embed into a smaller subtree.
    if (binary.subtree_size(node) as usize) < nodes.len() {
        return false;
    }
    let exact = semantics == MatchSemantics::Exact;

    stack.clear();
    stack.push(node);
    let mut i = 0usize;
    while let Some(v) = stack.pop() {
        let sg_node = nodes[i];
        i += 1;
        if binary.label(v) != sg_node.label {
            return false;
        }
        match sg_node.right {
            ChildKind::Component => match binary.right(v) {
                Some(r) => stack.push(r),
                None => return false,
            },
            ChildKind::Bridge => {
                if binary.right(v).is_none() {
                    return false;
                }
            }
            ChildKind::Absent => {
                if exact && binary.right(v).is_some() {
                    return false;
                }
            }
        }
        match sg_node.left {
            ChildKind::Component => match binary.left(v) {
                Some(l) => stack.push(l),
                None => return false,
            },
            ChildKind::Bridge => {
                if binary.left(v).is_none() {
                    return false;
                }
            }
            ChildKind::Absent => {
                if exact && binary.left(v).is_some() {
                    return false;
                }
            }
        }
    }
    debug_assert_eq!(i, nodes.len());
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{LabelInterner, Tree, TreeBuilder};

    /// The Figure 4 general tree; its LC-RS image is Figure 4(b).
    fn figure4() -> (Tree, BinaryTree, LabelInterner) {
        let mut labels = LabelInterner::new();
        let l: Vec<_> = (1..=10).map(|i| labels.intern(&format!("l{i}"))).collect();
        let mut b = TreeBuilder::new();
        let n1 = b.root(l[0]);
        let n2 = b.child(n1, l[1]);
        let n3 = b.child(n2, l[2]);
        b.child(n3, l[3]);
        b.child(n3, l[4]);
        b.child(n1, l[5]);
        let n7 = b.child(n1, l[6]);
        let n8 = b.child(n7, l[7]);
        b.child(n8, l[8]);
        b.child(n8, l[9]);
        let tree = b.build();
        let binary = BinaryTree::from_tree(&tree);
        (tree, binary, labels)
    }

    fn node_with_label(tree: &Tree, labels: &LabelInterner, name: &str) -> NodeId {
        let label = labels.get(name).unwrap();
        tree.node_ids().find(|&n| tree.label(n) == label).unwrap()
    }

    /// Figure 5: the 3-partitioning of Figure 4(b) cutting ⟨N2,N3⟩ and
    /// ⟨N6,N7⟩ — cut roots N3 and N7.
    fn figure5_subgraphs() -> (Tree, BinaryTree, LabelInterner, Vec<Subgraph>) {
        let (tree, binary, labels) = figure4();
        let n3 = node_with_label(&tree, &labels, "l3");
        let n7 = node_with_label(&tree, &labels, "l7");
        let mut cuts = vec![n3, n7];
        cuts.sort_by_key(|&c| binary.post_of(c));
        let general_post = tree.postorder_numbers();
        let sgs = build_subgraphs(&binary, &general_post, &cuts, 0);
        (tree, binary, labels, sgs)
    }

    #[test]
    fn figure5_structure() {
        let (_, _binary, labels, sgs) = figure5_subgraphs();
        assert_eq!(sgs.len(), 3);
        let l = |name: &str| labels.get(name).unwrap();

        // s1 = {N3, N4, N5}: root ℓ3 with left component child; N3's right
        // pointer is empty in the binary tree; the incoming edge comes from
        // N2's left pointer.
        let s1 = &sgs[0];
        assert_eq!(s1.ordinal, 1);
        assert_eq!(s1.root_post, 3); // general postorder: N4, N5, N3, ...
        assert_eq!(s1.component_size(), 3);
        assert_eq!(s1.nodes[0].label, l("l3"));
        assert_eq!(s1.incoming, Some(Side::Left));
        assert_eq!(s1.nodes[0].left, ChildKind::Component);
        assert_eq!(s1.nodes[0].right, ChildKind::Absent);

        // s2 = {N7, N8, N9, N10}: left chain, incoming from N6's right.
        let s2 = &sgs[1];
        assert_eq!(s2.ordinal, 2);
        assert_eq!(s2.root_post, 9); // N7 is 9th in general postorder
        assert_eq!(s2.component_size(), 4);
        assert_eq!(s2.nodes[0].label, l("l7"));
        assert_eq!(s2.incoming, Some(Side::Right));

        // s3 = {N1, N2, N6}: contains the root, two outgoing bridges.
        let s3 = &sgs[2];
        assert_eq!(s3.ordinal, 3);
        assert_eq!(s3.root_post, 10);
        assert_eq!(s3.suffix, 0);
        assert_eq!(s3.component_size(), 3);
        assert_eq!(s3.incoming, None);
        // N2 (second node in preorder) has a left bridge to N3 and a
        // component right child N6; N6 has a right bridge to N7.
        assert_eq!(s3.nodes[1].label, l("l2"));
        assert_eq!(s3.nodes[1].left, ChildKind::Bridge);
        assert_eq!(s3.nodes[1].right, ChildKind::Component);
        assert_eq!(s3.nodes[2].label, l("l6"));
        assert_eq!(s3.nodes[2].right, ChildKind::Bridge);
    }

    #[test]
    fn components_cover_tree_disjointly() {
        let (_, binary, _, sgs) = figure5_subgraphs();
        let total: usize = sgs.iter().map(|s| s.component_size()).sum();
        assert_eq!(total, binary.len());
    }

    #[test]
    fn every_subgraph_matches_its_own_tree() {
        let (_, binary, _, sgs) = figure5_subgraphs();
        for sg in &sgs {
            assert!(
                subgraph_matches(sg, &binary, sg.root),
                "subgraph {} must match its own root",
                sg.ordinal
            );
        }
    }

    #[test]
    fn subgraph_does_not_match_wrong_positions() {
        let (_, binary, _, sgs) = figure5_subgraphs();
        let s1 = &sgs[0];
        for node in binary.node_ids() {
            if node == s1.root {
                continue;
            }
            assert!(
                !subgraph_matches(s1, &binary, node),
                "s1 must not match at node {node}"
            );
        }
    }

    #[test]
    fn embedding_ignores_extra_descendants() {
        // Under Embedding semantics, subgraph {a, b} (a with left component
        // child b, b with nothing) matches a tree where b has further
        // children; under Exact it must not.
        let mut labels = LabelInterner::new();
        let (a, b_lbl, c) = (labels.intern("a"), labels.intern("b"), labels.intern("c"));
        // Container: a -> b (leaf). Cut nothing; single subgraph of 2 nodes.
        let mut builder = TreeBuilder::new();
        let root = builder.root(a);
        builder.child(root, b_lbl);
        let small_tree = builder.build();
        let small = BinaryTree::from_tree(&small_tree);
        let sgs = build_subgraphs(&small, &small_tree.postorder_numbers(), &[], 0);
        assert_eq!(sgs.len(), 1);
        let sg = &sgs[0];

        // Bigger tree: a -> b -> c. In LC-RS: a.l=b, b.l=c.
        let mut builder = TreeBuilder::new();
        let root = builder.root(a);
        let b_node = builder.child(root, b_lbl);
        builder.child(b_node, c);
        let big = BinaryTree::from_tree(&builder.build());
        assert!(
            subgraph_matches_with(sg, &big, big.root(), MatchSemantics::Embedding),
            "embedding semantics: extra grandchild must not block the match"
        );
        assert!(
            !subgraph_matches_with(sg, &big, big.root(), MatchSemantics::Exact),
            "exact semantics: the extra grandchild is an absence violation"
        );
    }

    #[test]
    fn bridge_requires_child_presence() {
        // Subgraph root with a left bridge requires the matched node to
        // have a left child.
        let mut labels = LabelInterner::new();
        let (a, b_lbl) = (labels.intern("a"), labels.intern("b"));
        let mut builder = TreeBuilder::new();
        let root = builder.root(a);
        builder.child(root, b_lbl);
        let container_tree = builder.build();
        let container = BinaryTree::from_tree(&container_tree);
        // Cut the single child: subgraph s2 (root component) has a left
        // bridge at its root.
        let child = container.left(container.root()).unwrap();
        let sgs = build_subgraphs(&container, &container_tree.postorder_numbers(), &[child], 0);
        let root_sg = &sgs[1];
        assert_eq!(root_sg.nodes[0].left, ChildKind::Bridge);

        // Match against a single-node tree labeled a: must fail.
        let lone = BinaryTree::from_tree(&Tree::leaf(a));
        assert!(!subgraph_matches(root_sg, &lone, lone.root()));
        // Match against a -> z: succeeds (bridge child label is free).
        let mut builder = TreeBuilder::new();
        let r = builder.root(a);
        builder.child(r, labels.intern("z"));
        let with_child = BinaryTree::from_tree(&builder.build());
        assert!(subgraph_matches(root_sg, &with_child, with_child.root()));
    }

    #[test]
    fn incoming_side_is_enforced() {
        let (_, binary, _, sgs) = figure5_subgraphs();
        // s2 hangs from a right pointer. Its own root is the only node
        // where it matches; flip a copy to demand a left incoming edge and
        // it must no longer match there.
        let mut flipped = sgs[1].clone();
        flipped.incoming = Some(Side::Left);
        assert!(!subgraph_matches(&flipped, &binary, sgs[1].root));
    }

    #[test]
    fn twig_uses_component_children_only() {
        let (_, _, labels, sgs) = figure5_subgraphs();
        let s3 = &sgs[2];
        // Root N1: left component child N2, no right child.
        let expected = pack_twig(
            labels.get("l1").unwrap(),
            labels.get("l2").unwrap(),
            Label::EPSILON,
        );
        assert_eq!(s3.twig, expected);
        // s1 root N3: left component child N4, right absent.
        let s1 = &sgs[0];
        let expected = pack_twig(
            labels.get("l3").unwrap(),
            labels.get("l4").unwrap(),
            Label::EPSILON,
        );
        assert_eq!(s1.twig, expected);
    }
}
