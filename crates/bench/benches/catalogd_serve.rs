//! What the TCP network layer costs over the in-process cluster.
//!
//! Series (same frozen catalog, same probe batch):
//!
//! * `catalogd_serve/in_process/*` — `Cluster::join` with in-process
//!   nodes: the bit-identical baseline the wire must match;
//! * `catalogd_serve/tcp_n{N}/*`   — the same batch through
//!   `ClusterClient::join` against N live loopback `Catalogd` servers:
//!   framing + syscalls + probe registration on top of identical
//!   per-shard work;
//! * `catalogd_serve/handshake/*`  — full `ClusterClient::connect`
//!   against 2 nodes: dial + Hello + topology reconstruction, the
//!   per-client setup cost that serving amortizes.
//!
//! On the 1-CPU bench container the server threads and the client
//! serialize, so these numbers are a wire-overhead ceiling, not a
//! fan-out claim — re-record on multi-core for the concurrency story.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::PartSjConfig;
use std::net::SocketAddr;
use tsj_catalogd::{interner_for, Catalogd, ClientConfig, ClusterClient, ServerConfig};
use tsj_cluster::{Cluster, ClusterConfig};
use tsj_datagen::swissprot_like;
use tsj_shard::ShardConfig;

fn bench_catalogd_serve(c: &mut Criterion) {
    let config = PartSjConfig::default();
    let tau = 2u32;
    let shard_cfg = ShardConfig {
        shards: 8,
        probe_threads: 1,
        verify_threads: 1,
        ..Default::default()
    };
    let n = 400usize;
    let left = swissprot_like(n, 2015);
    let probes = swissprot_like(50, 2015); // prefix of the catalog: real matches
    let labels = interner_for(&left);
    let catalog = tsj_catalog::Catalog::freeze(left, labels.clone(), tau, &config, &shard_cfg);
    let bytes = catalog.to_bytes();

    let mut group = c.benchmark_group("catalogd_serve");

    let mut cluster =
        Cluster::from_snapshot(bytes.clone(), &ClusterConfig::new(2, 1)).expect("cluster");
    group.bench_with_input(BenchmarkId::new("in_process", n), &probes, |b, probes| {
        b.iter(|| {
            let served = cluster.join(probes, tau, &config).expect("cluster join");
            assert!(served.is_complete());
            served
        })
    });

    for &nodes in &[1usize, 2] {
        let servers: Vec<_> = (0..nodes)
            .map(|node| {
                Catalogd::bind(
                    bytes.clone(),
                    &ServerConfig::new(node, nodes, 1),
                    "127.0.0.1:0",
                )
                .expect("bind")
                .spawn()
                .expect("spawn")
            })
            .collect();
        let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.addr()).collect();
        let mut client = ClusterClient::connect(&addrs, ClientConfig::default()).expect("connect");
        group.bench_with_input(
            BenchmarkId::new(format!("tcp_n{nodes}"), n),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let served = client.join(probes, &labels, tau).expect("tcp join");
                    assert!(served.is_complete());
                    served
                })
            },
        );
        if nodes == 2 {
            group.bench_with_input(BenchmarkId::new("handshake", n), &addrs, |b, addrs| {
                b.iter(|| ClusterClient::connect(addrs, ClientConfig::default()).expect("connect"))
            });
        }
        for node in 0..nodes {
            client.shutdown_node(node).expect("graceful shutdown");
        }
    }
    group.finish();
}

criterion_group!(benches, bench_catalogd_serve);
criterion_main!(benches);
