//! Non-self (R×S) similarity join — the paper notes in §1 that the
//! framework "is directly applicable for non-self joins"; this module
//! makes that concrete.
//!
//! Unlike the self-join, the index can be built offline: every tree of the
//! *left* collection is δ-partitioned and inserted first, then each
//! *right* tree probes all size lists within `[|s| − τ, |s| + τ]` (both
//! directions, since left trees may be larger or smaller). Lemma 2 applies
//! with `T1` the indexed left tree: if `TED(r, s) ≤ τ`, some subgraph of
//! `r` appears in `s`, so probing `s`'s nodes finds the pair.

use crate::config::PartSjConfig;
use crate::index::{LayerId, MatchCache, SubgraphIndex};
use crate::partition::cuts_for;
use crate::probe::{probe_tree_nodes, resolve_layers, ProbeCounters, ProbeScratch, StampSink};
use crate::subgraph::build_subgraphs;
use crate::verify::{ProbeVerify, VerifyData, VerifyEngine};
use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::{FxHashMap, Tree};

/// R×S similarity join: all pairs `(i, j)` with `TED(left[i], right[j]) ≤
/// tau`. Pair indices refer to the respective input collections.
pub fn partsj_join_rs(
    left: &[Tree],
    right: &[Tree],
    tau: u32,
    config: &PartSjConfig,
) -> JoinOutcome {
    let delta = 2 * tau as usize + 1;
    let mut stats = JoinStats::default();

    // Build phase: partition and index every left tree.
    let build_start = Instant::now();
    let mut index = SubgraphIndex::new(tau, config.window);
    let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
    let left_data: Vec<VerifyData> = VerifyData::batch_for_config(left, &config.verify);
    let mut probe_scratch = ProbeScratch::new();
    for (i, tree) in left.iter().enumerate() {
        let size = tree.len() as u32;
        if (size as usize) < delta {
            small_by_size.entry(size).or_default().push(i as TreeIdx);
            continue;
        }
        let (binary, posts) = probe_scratch.prepare(tree);
        let cuts = cuts_for(binary, delta, config.partitioning, i as u64);
        let subgraphs = build_subgraphs(binary, posts, &cuts, i as TreeIdx);
        index.insert_tree(size, subgraphs);
    }
    stats.candidate_time += build_start.elapsed();

    // Probe phase: each right tree searches the left index.
    let mut verify = VerifyEngine::new(tau, config);
    let mut pairs: Vec<(TreeIdx, TreeIdx)> = Vec::new();
    let mut stamp: Vec<u32> = vec![u32::MAX; left.len()];
    // Scratch reused across right trees.
    let mut candidates: Vec<TreeIdx> = Vec::new();
    let mut layer_window: Vec<LayerId> = Vec::new();
    let mut match_cache = MatchCache::new();
    let mut counters = ProbeCounters::default();
    let mut probe_verify = ProbeVerify::new();

    for (j, tree) in right.iter().enumerate() {
        let probe_start = Instant::now();
        let marker = j as u32;
        candidates.clear();
        let size_j = tree.len() as u32;
        let lo = size_j.saturating_sub(tau).max(1);
        let hi = size_j + tau;

        for n in lo..=hi {
            if let Some(list) = small_by_size.get(&n) {
                for &i in list {
                    if stamp[i as usize] != marker {
                        stamp[i as usize] = marker;
                        candidates.push(i);
                    }
                }
            }
        }

        // The offline index is frozen now: resolve the `2τ + 1` size
        // layers once per right tree.
        resolve_layers(&index, lo, hi, &mut layer_window);

        let (binary, posts) = probe_scratch.prepare(tree);
        let mut sink = StampSink {
            stamp: &mut stamp,
            marker,
            candidates: &mut candidates,
        };
        probe_tree_nodes(
            &index,
            &layer_window,
            binary,
            posts,
            size_j,
            config.matching,
            &mut match_cache,
            &mut counters,
            &mut sink,
        );
        stats.candidates += candidates.len() as u64;
        stats.pairs_examined += candidates.len() as u64;
        stats.candidate_time += probe_start.elapsed();

        let verify_start = Instant::now();
        let data_j = probe_verify.prepare(tree, &config.verify);
        for &i in &candidates {
            if verify.check(&left_data[i as usize], data_j).is_some() {
                pairs.push((i, j as TreeIdx));
            }
        }
        stats.verify_time += verify_start.elapsed();
    }

    verify.fold_into(&mut stats);
    JoinOutcome::new_bipartite(pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_ted::TedEngine;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(labels: &mut LabelInterner, specs: &[&str]) -> Vec<Tree> {
        specs
            .iter()
            .map(|s| parse_bracket(s, labels).unwrap())
            .collect()
    }

    fn brute_force_rs(left: &[Tree], right: &[Tree], tau: u32) -> Vec<(TreeIdx, TreeIdx)> {
        let mut engine = TedEngine::unit();
        let mut pairs = Vec::new();
        for (i, l) in left.iter().enumerate() {
            for (j, r) in right.iter().enumerate() {
                if l.len().abs_diff(r.len()) as u32 <= tau && engine.distance_trees(l, r) <= tau {
                    pairs.push((i as TreeIdx, j as TreeIdx));
                }
            }
        }
        pairs
    }

    #[test]
    fn rs_join_matches_brute_force() {
        let mut labels = LabelInterner::new();
        let left = collection(
            &mut labels,
            &["{a{b}{c}}", "{a{b}{c}{d}}", "{q{w{e}{r}}}", "{z}"],
        );
        let right = collection(
            &mut labels,
            &[
                "{a{b}{c}}",
                "{a{b}{x}}",
                "{q{w{e}{r}{t}}}",
                "{z{y}}",
                "{m{n{o{p}}}}",
            ],
        );
        for tau in 0..=3u32 {
            let expected = brute_force_rs(&left, &right, tau);
            let outcome = partsj_join_rs(&left, &right, tau, &PartSjConfig::default());
            assert_eq!(outcome.pairs, expected, "tau = {tau}");
        }
    }

    #[test]
    fn rs_join_handles_asymmetric_sizes() {
        // Right trees larger than every left tree and vice versa.
        let mut labels = LabelInterner::new();
        let left = collection(&mut labels, &["{a{b}}", "{a{b}{c}{d}{e}{f}{g}}"]);
        let right = collection(&mut labels, &["{a{b}{c}}", "{a{b}{c}{d}{e}{f}}"]);
        for tau in 1..=2u32 {
            let expected = brute_force_rs(&left, &right, tau);
            let outcome = partsj_join_rs(&left, &right, tau, &PartSjConfig::default());
            assert_eq!(outcome.pairs, expected, "tau = {tau}");
        }
    }

    #[test]
    fn rs_join_with_empty_side() {
        let mut labels = LabelInterner::new();
        let trees = collection(&mut labels, &["{a}"]);
        let outcome = partsj_join_rs(&trees, &[], 2, &PartSjConfig::default());
        assert!(outcome.pairs.is_empty());
        let outcome = partsj_join_rs(&[], &trees, 2, &PartSjConfig::default());
        assert!(outcome.pairs.is_empty());
    }

    #[test]
    fn rs_join_is_bipartite_not_symmetric_normalized() {
        // Pair (3, 0) must stay (3, 0) — left index 3, right index 0.
        let mut labels = LabelInterner::new();
        let left = collection(&mut labels, &["{x}", "{y}", "{z}", "{a{b}}"]);
        let right = collection(&mut labels, &["{a{b}}"]);
        let outcome = partsj_join_rs(&left, &right, 0, &PartSjConfig::default());
        assert_eq!(outcome.pairs, vec![(3, 0)]);
    }
}
