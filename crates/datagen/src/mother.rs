//! Mother-tree sampling — the mechanism of Zaki's tree generator
//! (reference \[28\] of the paper), which §4 uses for the synthetic dataset.
//!
//! A single large *mother tree* is grown once per collection; every
//! database tree is a random prefix-closed subtree of it (pick a root,
//! then repeatedly adopt a random frontier child until the target size is
//! reached, preserving the mother's child order and labels). Trees sampled
//! from overlapping mother regions naturally share large substructures, so
//! a similarity self-join has results across the whole distance range —
//! the distribution real datasets exhibit — rather than an artificial
//! band of mutated clones. A final decay pass (`Dz`, Yang et al.) adds
//! local noise.

use crate::grow::{grow_tree, ShapeProfile};
use crate::mutate::mutate;
use rand::Rng;
use tsj_tree::{NodeId, Tree, TreeBuilder};

/// A grown mother tree from which database trees are sampled.
#[derive(Debug, Clone)]
pub struct MotherSampler {
    mother: Tree,
    subtree_sizes: Vec<u32>,
}

impl MotherSampler {
    /// Grows a mother tree with `mother_size` nodes under `profile`.
    pub fn new<R: Rng>(
        rng: &mut R,
        mother_size: usize,
        num_labels: u32,
        profile: &ShapeProfile,
    ) -> MotherSampler {
        let mother = grow_tree(rng, mother_size, num_labels, profile);
        let subtree_sizes = mother.subtree_sizes();
        MotherSampler {
            mother,
            subtree_sizes,
        }
    }

    /// The mother tree itself.
    pub fn mother(&self) -> &Tree {
        &self.mother
    }

    /// Samples a random prefix-closed subtree with about `target` nodes.
    ///
    /// The sampled tree's root is a random mother node whose subtree can
    /// accommodate `target` nodes (falling back to the mother root);
    /// children are adopted in random frontier order but attached in the
    /// mother's original child order, so the sample is itself a rooted
    /// ordered labeled tree sharing structure with every other sample
    /// drawn from the same region.
    pub fn sample<R: Rng>(&self, rng: &mut R, target: usize) -> Tree {
        let target = target.max(1);
        // Candidate roots: subtree at least as large as the target. Retry
        // a few times before falling back to the mother root so samples
        // spread across regions instead of always starting at the top.
        let mut root = self.mother.root();
        for _ in 0..16 {
            let candidate = NodeId::from_index(rng.gen_range(0..self.mother.len()));
            if self.subtree_sizes[candidate.index()] as usize >= target {
                root = candidate;
                break;
            }
        }

        // Frontier expansion: include `root`, then adopt random frontier
        // children until the target is met.
        let mut included: Vec<NodeId> = vec![root];
        let mut frontier: Vec<NodeId> = self.mother.children(root).to_vec();
        while included.len() < target && !frontier.is_empty() {
            let pick = rng.gen_range(0..frontier.len());
            let node = frontier.swap_remove(pick);
            included.push(node);
            frontier.extend_from_slice(self.mother.children(node));
        }

        // Rebuild the induced subtree in preorder, keeping the mother's
        // child order.
        let mut in_sample = vec![false; self.mother.len()];
        for &node in &included {
            in_sample[node.index()] = true;
        }
        let mut builder = TreeBuilder::with_capacity(included.len());
        let new_root = builder.root(self.mother.label(root));
        let mut stack: Vec<(NodeId, tsj_tree::NodeId)> = Vec::new();
        for &child in self.mother.children(root).iter().rev() {
            if in_sample[child.index()] {
                stack.push((child, new_root));
            }
        }
        while let Some((old, parent)) = stack.pop() {
            let id = builder.child(parent, self.mother.label(old));
            for &child in self.mother.children(old).iter().rev() {
                if in_sample[child.index()] {
                    stack.push((child, id));
                }
            }
        }
        builder.build()
    }
}

/// Generates a collection of `n` trees sampled from one mother tree and
/// decay-mutated with probability `dz` per node.
pub fn mother_collection<R: Rng>(
    rng: &mut R,
    n: usize,
    avg_size: usize,
    num_labels: u32,
    profile: &ShapeProfile,
    mother_factor: usize,
    dz: f64,
) -> Vec<Tree> {
    let mother_size = (avg_size * mother_factor).max(avg_size * 2);
    let sampler = MotherSampler::new(rng, mother_size, num_labels, profile);
    (0..n)
        .map(|_| {
            let lo = (avg_size / 2).max(1);
            let hi = (3 * avg_size / 2).max(lo);
            let target = rng.gen_range(lo..=hi);
            let sampled = sampler.sample(rng, target);
            if dz > 0.0 {
                mutate(&sampled, dz, rng, num_labels)
            } else {
                sampled
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile() -> ShapeProfile {
        ShapeProfile {
            max_fanout: 3,
            max_depth: 8,
            deepen_prob: 0.3,
        }
    }

    #[test]
    fn samples_are_valid_trees_of_roughly_target_size() {
        let mut rng = StdRng::seed_from_u64(11);
        let sampler = MotherSampler::new(&mut rng, 400, 10, &profile());
        for _ in 0..50 {
            let tree = sampler.sample(&mut rng, 40);
            tree.validate().unwrap();
            assert!(tree.len() <= 41);
        }
    }

    #[test]
    fn samples_preserve_mother_child_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let sampler = MotherSampler::new(&mut rng, 200, 6, &profile());
        // Sampling the full mother from the root must reproduce it.
        let full = sampler.sample(&mut rng, 200);
        if full.len() == sampler.mother().len() {
            assert!(full.structurally_eq(sampler.mother()));
        }
    }

    #[test]
    fn samples_share_structure() {
        // Two samples of the whole mother are much closer to each other
        // than to an unrelated random tree of the same size.
        let mut rng = StdRng::seed_from_u64(17);
        let sampler = MotherSampler::new(&mut rng, 120, 8, &profile());
        let a = sampler.sample(&mut rng, 60);
        let b = sampler.sample(&mut rng, 60);
        let unrelated = grow_tree(&mut rng, 60, 8, &profile());
        let d_ab = tsj_ted::ted(&a, &b);
        let d_au = tsj_ted::ted(&a, &unrelated);
        assert!(
            d_ab < d_au,
            "mother samples should be closer ({d_ab}) than unrelated trees ({d_au})"
        );
    }

    #[test]
    fn collection_is_deterministic() {
        let gen = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            mother_collection(&mut rng, 30, 40, 10, &profile(), 10, 0.05)
        };
        let a = gen(5);
        let b = gen(5);
        for (x, y) in a.iter().zip(&b) {
            assert!(x.structurally_eq(y));
        }
    }

    #[test]
    fn respects_shape_profile() {
        let mut rng = StdRng::seed_from_u64(23);
        let trees = mother_collection(&mut rng, 40, 30, 5, &profile(), 10, 0.0);
        for tree in &trees {
            assert!(tree.max_fanout() <= 3);
            assert!(tree.max_depth() <= 8);
        }
    }
}
