//! Deterministic fault injection.
//!
//! Every fault decision is a **stateless hash** of the injector seed and
//! the request's coordinates `(node, probe, shard, attempt)` — not a draw
//! from a shared PRNG stream. That makes the whole fault schedule
//! independent of thread interleaving: the scatter phase can fan out over
//! any number of workers and the same request still hits the same fault,
//! so a failing fault-matrix seed replays exactly.
//!
//! The injectable faults mirror what a real serving node does wrong:
//!
//! * **node down** — the node is unreachable (statically via
//!   [`FaultPlan::down_nodes`], or rolled per request); the router fails
//!   over to a replica immediately, without backoff;
//! * **delay** — the response arrives [`FaultPlan::delay_ms`] late; a
//!   delay longer than the per-request timeout *is* a timeout (the
//!   response is discarded before any work runs, so retried requests
//!   never double-count stats);
//! * **timeout** — the request consumes its full timeout and fails;
//! * **transient error** — an immediate retryable failure;
//! * **corrupted shard section on load** — handled at cluster
//!   construction: [`corrupt_range`] damages a node's snapshot copy and
//!   the checksummed decode surfaces a typed error (the node comes up
//!   down).
//!
//! To add a fault type: add a variant to [`Fault`], a rate knob to
//! [`FaultPlan`], a branch in [`FaultInjector::decide`], and teach the
//! router's retry loop what the fault costs (time, health) — see the
//! README's cluster section for the walkthrough.

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The target node is unreachable.
    NodeDown,
    /// The response is late by this many milliseconds (a value above the
    /// per-request timeout is equivalent to [`Fault::Timeout`]).
    Delay(u64),
    /// The request consumes its timeout and fails.
    Timeout,
    /// An immediate retryable error.
    Transient,
}

/// What to inject, and how often. Rates are per-request probabilities in
/// permille (so they stay exact integers); the default plan injects
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed of every fault decision (and of load-time corruption).
    pub seed: u64,
    /// Nodes that are down from the start.
    pub down_nodes: Vec<usize>,
    /// Nodes whose snapshot copy is corrupted before restore: one of the
    /// node's shard sections gets a deterministic multi-byte flip, the
    /// checksummed decode fails, and the node comes up down with the
    /// typed error attached.
    pub corrupt_on_load: Vec<usize>,
    /// Permille of requests whose target node drops dead.
    pub node_down_permille: u16,
    /// Permille of requests that fail with a transient error.
    pub transient_permille: u16,
    /// Permille of requests that time out.
    pub timeout_permille: u16,
    /// Permille of requests delayed by [`FaultPlan::delay_ms`].
    pub delay_permille: u16,
    /// How late a delayed response is.
    pub delay_ms: u64,
}

impl FaultPlan {
    /// A plan that injects nothing — the zero-fault baseline.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Sum of the per-request fault rates (must stay ≤ 1000).
    fn total_permille(&self) -> u32 {
        u32::from(self.node_down_permille)
            + u32::from(self.transient_permille)
            + u32::from(self.timeout_permille)
            + u32::from(self.delay_permille)
    }
}

/// SplitMix64 — the standard 64-bit finalizer; good avalanche, no state.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Hashes `seed` with every part, in order — the one mixing function
/// behind fault rolls, backoff jitter and corruption placement.
pub fn mix(seed: u64, parts: &[u64]) -> u64 {
    parts
        .iter()
        .fold(splitmix64(seed), |h, &p| splitmix64(h ^ p))
}

/// `mix` mapped to `[0, 1)` — the jitter source for
/// [`crate::RetryPolicy::backoff_ms`].
pub fn mix_unit(seed: u64, parts: &[u64]) -> f64 {
    // 53 mantissa bits: every value is exactly representable.
    (mix(seed, parts) >> 11) as f64 / (1u64 << 53) as f64
}

/// Deterministically damages `bytes[range]`: a short run (1–4 bytes) at a
/// hash-picked offset is XOR-flipped with distinct non-zero masks, so the
/// net change can never cancel out and any FNV-checksummed section
/// containing the range fails its verify. Panics if the range is empty
/// or out of bounds (test-harness misuse, not a runtime path).
pub fn corrupt_range(bytes: &mut [u8], range: std::ops::Range<usize>, seed: u64) {
    assert!(!range.is_empty() && range.end <= bytes.len());
    let h = mix(seed, &[0xC0_44u64, range.start as u64, range.len() as u64]);
    let run = 1 + (h % 4) as usize;
    let run = run.min(range.len());
    let start = range.start + (h >> 3) as usize % (range.len() - run + 1);
    for (k, byte) in bytes[start..start + run].iter_mut().enumerate() {
        // Mask k is non-zero and distinct per position in the run.
        *byte ^= 1 + ((h >> (8 + 8 * k)) as u8 & 0x7f).wrapping_mul(2);
    }
}

/// The per-node fault oracle the router consults before every attempt.
///
/// `decide` is consulted *before* any compute runs, so a faulted request
/// does no probe or verify work — which is what keeps retried requests
/// from double-counting candidates or filter-stage counters.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
}

impl FaultInjector {
    /// An injector executing `plan`.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        FaultInjector { plan }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The fault (if any) injected into attempt `attempt` of request
    /// `(probe, shard)` against `node`. Pure in its arguments and the
    /// seed.
    pub fn decide(&self, node: usize, probe: u32, shard: u32, attempt: u32) -> Option<Fault> {
        if self.plan.down_nodes.contains(&node) {
            return Some(Fault::NodeDown);
        }
        let total = self.plan.total_permille();
        if total == 0 {
            return None;
        }
        let roll = (mix(
            self.plan.seed,
            &[
                node as u64,
                u64::from(probe),
                u64::from(shard),
                u64::from(attempt),
            ],
        ) % 1000) as u32;
        let mut edge = u32::from(self.plan.node_down_permille);
        if roll < edge {
            return Some(Fault::NodeDown);
        }
        edge += u32::from(self.plan.transient_permille);
        if roll < edge {
            return Some(Fault::Transient);
        }
        edge += u32::from(self.plan.timeout_permille);
        if roll < edge {
            return Some(Fault::Timeout);
        }
        edge += u32::from(self.plan.delay_permille);
        if roll < edge {
            return Some(Fault::Delay(self.plan.delay_ms));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_attempt_sensitive() {
        let injector = FaultInjector::new(FaultPlan {
            seed: 7,
            transient_permille: 500,
            ..FaultPlan::none()
        });
        for node in 0..4 {
            for probe in 0..16 {
                let a = injector.decide(node, probe, 3, 0);
                let b = injector.decide(node, probe, 3, 0);
                assert_eq!(a, b);
            }
        }
        // With a 50% rate, some (probe, attempt) pairs must differ across
        // attempts — the retry path sees fresh rolls.
        let differs = (0..64).any(|p| injector.decide(0, p, 0, 0) != injector.decide(0, p, 0, 1));
        assert!(differs);
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let injector = FaultInjector::new(FaultPlan::none());
        for probe in 0..128 {
            assert_eq!(injector.decide(0, probe, 0, 0), None);
        }
    }

    #[test]
    fn down_nodes_always_fail() {
        let injector = FaultInjector::new(FaultPlan {
            down_nodes: vec![2],
            ..FaultPlan::none()
        });
        assert_eq!(injector.decide(2, 9, 1, 3), Some(Fault::NodeDown));
        assert_eq!(injector.decide(1, 9, 1, 3), None);
    }

    #[test]
    fn corrupt_range_always_changes_the_range() {
        for seed in 0..64 {
            let clean = vec![0xabu8; 100];
            let mut dirty = clean.clone();
            corrupt_range(&mut dirty, 10..90, seed);
            assert_ne!(clean, dirty, "seed {seed} produced a no-op corruption");
            assert_eq!(clean[..10], dirty[..10]);
            assert_eq!(clean[90..], dirty[90..]);
        }
    }

    #[test]
    fn mix_unit_stays_in_unit_interval() {
        for seed in 0..256 {
            let u = mix_unit(seed, &[1, 2, 3]);
            assert!((0.0..1.0).contains(&u));
        }
    }
}
