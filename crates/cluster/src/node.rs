//! One catalog "node": the shard sections it owns, restored from a
//! snapshot, and the serve loop that answers shard requests.
//!
//! A node is the single-machine unit of the cluster: it decodes only the
//! shard sections assigned to it (plus the shared tree store, which every
//! node needs for verification), and serves `(probe, shard)` requests by
//! running exactly the inline loop of `frozen_rs_join` restricted to that
//! shard — side-listed small trees of the request's size classes first,
//! then the shard's `SubgraphIndex` probed through the shared Algorithm 1
//! node loop, then one `VerifyEngine` pass over the deduplicated
//! candidates. Because every catalog tree's postings live in exactly one
//! shard (its own size class), per-shard candidate sets are disjoint and
//! the router's union of node responses reproduces the single-node join
//! bit-for-bit: same pairs, same candidate counts, same filter-stage
//! counters.

use crate::error::ClusterError;
use partsj::probe::ProbeCounters;
use partsj::{
    probe_tree_nodes, window_of, LayerId, MatchCache, PartSjConfig, StampSink, SubgraphIndex,
    VerifyData, VerifyEngine,
};
use std::time::Instant;
use tsj_catalog::SnapshotReader;
use tsj_ted::{JoinStats, TreeIdx};
use tsj_tree::{BinaryTree, FxHashMap, Tree};

/// One scatter unit: probe `probe`'s window classes that live on `shard`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRequest {
    /// Index of the probing tree in the router's probe batch.
    pub probe: TreeIdx,
    /// The shard this request must be served from.
    pub shard: u32,
    /// The probe-window size classes `shard` owns, ascending — the unit
    /// of coverage accounting: if this request ultimately fails, exactly
    /// these classes go unserved for `probe`.
    pub classes: Vec<u32>,
}

/// A served request: the catalog trees of this shard within `τ` of the
/// probe, plus the partial stats the router folds into the join total.
#[derive(Debug, Clone)]
pub struct ShardResponse {
    /// Echo of [`ShardRequest::probe`].
    pub probe: TreeIdx,
    /// Verified catalog tree ids (left side of result pairs).
    pub matches: Vec<TreeIdx>,
    /// This request's counters: candidates, TED calls, per-stage kills.
    /// `results` is left zero — the router sets it after the union.
    pub stats: JoinStats,
}

/// The probe-side context a request is served against, computed once per
/// probing tree by the router and shared across its shard requests.
#[derive(Debug)]
pub struct ProbeCtx {
    pub(crate) binary: BinaryTree,
    pub(crate) posts: Vec<u32>,
    pub(crate) size: u32,
    pub(crate) data: VerifyData,
}

impl ProbeCtx {
    /// Precomputes the probe-side inputs for `tree` under `config`.
    pub fn new(tree: &Tree, config: &PartSjConfig) -> ProbeCtx {
        ProbeCtx {
            binary: BinaryTree::from_tree(tree),
            posts: tree.postorder_numbers(),
            size: tree.len() as u32,
            data: VerifyData::for_config(tree, &config.verify),
        }
    }

    /// Precomputes the contexts for a whole probe batch through one
    /// shared set of build temporaries (the per-context storage itself
    /// is owned — contexts outlive the scatter).
    pub fn batch(trees: &[Tree], config: &PartSjConfig) -> Vec<ProbeCtx> {
        let data = VerifyData::batch_for_config(trees, &config.verify);
        let mut walk = Vec::new();
        trees
            .iter()
            .zip(data)
            .map(|(tree, data)| {
                let mut posts = Vec::new();
                tree.postorder_numbers_into(&mut posts, &mut walk);
                ProbeCtx {
                    binary: BinaryTree::from_tree(tree),
                    posts,
                    size: tree.len() as u32,
                    data,
                }
            })
            .collect()
    }
}

/// Per-thread serve scratch: the candidate-dedup stamp array (marker
/// generations, never re-cleared), the per-node match cache and the
/// probe buffers. One per scatter worker; the router keeps its own for
/// the sequential retry phase.
#[derive(Debug, Default)]
pub struct NodeScratch {
    stamp: Vec<TreeIdx>,
    next_marker: TreeIdx,
    cache: MatchCache,
    layers: Vec<LayerId>,
    candidates: Vec<TreeIdx>,
}

impl NodeScratch {
    fn begin(&mut self, trees: usize) -> TreeIdx {
        if self.stamp.len() != trees || self.next_marker == TreeIdx::MAX {
            self.stamp.clear();
            self.stamp.resize(trees, TreeIdx::MAX);
            self.next_marker = 0;
        }
        let marker = self.next_marker;
        self.next_marker += 1;
        marker
    }
}

/// One cluster node: the subset of shard sections it owns, the side list
/// of small trees, and the catalog trees' verification inputs.
#[derive(Debug)]
pub struct Node {
    id: usize,
    tau: u32,
    /// shard id → that shard's restored index.
    shards: FxHashMap<u32, SubgraphIndex>,
    /// size class → catalog trees too small to partition. Every node
    /// keeps the full (tiny) side list; requests select the classes the
    /// addressed shard owns, so nothing is double-served.
    smalls: FxHashMap<u32, Vec<TreeIdx>>,
    /// Verification inputs for every catalog tree (candidates can name
    /// any tree of the owned shards' size classes).
    left_data: Vec<VerifyData>,
}

impl Node {
    /// Restores node `id` from `reader`, decoding only the shard
    /// sections in `owned` (each checksum-verified — a corrupted section
    /// surfaces the typed [`tsj_catalog::CatalogError`] and the cluster
    /// marks the node down).
    pub fn restore(
        id: usize,
        reader: &SnapshotReader,
        owned: &[u32],
    ) -> Result<Node, ClusterError> {
        let trees = reader.trees()?;
        let tau = reader.tau();
        let delta = 2 * tau as usize + 1;
        let mut shards = FxHashMap::default();
        for &s in owned {
            shards.insert(s, reader.shard(s as usize)?);
        }
        let mut smalls: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
        for (i, tree) in trees.iter().enumerate() {
            let size = tree.len() as u32;
            if (size as usize) < delta {
                smalls.entry(size).or_default().push(i as TreeIdx);
            }
        }
        let left_data = VerifyData::batch(&trees);
        Ok(Node {
            id,
            tau,
            shards,
            smalls,
            left_data,
        })
    }

    /// This node's id in the cluster.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the node holds a replica of `shard`.
    pub fn owns(&self, shard: u32) -> bool {
        self.shards.contains_key(&shard)
    }

    /// The shards this node holds, ascending.
    pub fn owned_shards(&self) -> Vec<u32> {
        let mut owned: Vec<u32> = self.shards.keys().copied().collect();
        owned.sort_unstable();
        owned
    }

    /// Installs an additional shard replica (recovery path).
    pub fn add_shard(&mut self, shard: u32, index: SubgraphIndex) {
        self.shards.insert(shard, index);
    }

    /// Serves one shard request: candidates from the request's small
    /// classes and the shard's index (deduplicated per request), verified
    /// at `tau` through a fresh filter-chain engine. Mirrors the inline
    /// path of `tsj_shard::frozen_rs_join` restricted to one shard, so
    /// the union over shards is bit-identical to the single-node join.
    pub fn serve(
        &self,
        req: &ShardRequest,
        ctx: &ProbeCtx,
        tau: u32,
        config: &PartSjConfig,
        scratch: &mut NodeScratch,
    ) -> Result<ShardResponse, ClusterError> {
        debug_assert!(tau <= self.tau, "router checks tau before scattering");
        let index = self
            .shards
            .get(&req.shard)
            .ok_or(ClusterError::ShardNotOwned {
                node: self.id,
                shard: req.shard,
            })?;
        let probe_start = Instant::now();
        let mut stats = JoinStats::default();
        let marker = scratch.begin(self.left_data.len());
        scratch.candidates.clear();
        for &class in &req.classes {
            if let Some(list) = self.smalls.get(&class) {
                for &i in list {
                    if scratch.stamp[i as usize] != marker {
                        scratch.stamp[i as usize] = marker;
                        scratch.candidates.push(i);
                    }
                }
            }
        }
        // The shard's index only holds layers for its own size classes,
        // so resolving the full probe window surfaces exactly the owned
        // populated classes — the same layers `ShardedIndex::probe_tree`
        // would visit for this shard.
        let (lo, hi) = window_of(ctx.size, tau);
        scratch.layers.clear();
        scratch
            .layers
            .extend((lo..=hi).filter_map(|n| index.layer_id(n)));
        let mut counters = ProbeCounters::default();
        let mut sink = StampSink {
            stamp: &mut scratch.stamp,
            marker,
            candidates: &mut scratch.candidates,
        };
        probe_tree_nodes(
            index,
            &scratch.layers,
            &ctx.binary,
            &ctx.posts,
            ctx.size,
            config.matching,
            &mut scratch.cache,
            &mut counters,
            &mut sink,
        );
        stats.candidates = scratch.candidates.len() as u64;
        stats.pairs_examined = stats.candidates;
        stats.candidate_time = probe_start.elapsed();

        let verify_start = Instant::now();
        let mut verify = VerifyEngine::new(tau, config);
        let mut matches = Vec::new();
        for &i in &scratch.candidates {
            if verify
                .check(&self.left_data[i as usize], &ctx.data)
                .is_some()
            {
                matches.push(i);
            }
        }
        stats.verify_time = verify_start.elapsed();
        verify.fold_into(&mut stats);
        Ok(ShardResponse {
            probe: req.probe,
            matches,
            stats,
        })
    }
}
