//! The `STR` baseline: traversal-string lower-bound join (Guha et al.).
//!
//! Each tree is flattened into its preorder and postorder label sequences;
//! the string edit distance between either pair of sequences lower-bounds
//! the tree edit distance (§2, reference \[13\]). A pair survives the filter
//! only if *both* banded string distances stay within `τ`; survivors are
//! verified with exact TED. String distances are computed with the
//! threshold-banded DP (`O(τ·n)` per pair), mirroring the optimized string
//! join of Li et al. \[19\] that the paper's `STR` implementation adopts.

use crate::common::filter_verify_join;
use tsj_ted::{traversal_within_with, JoinOutcome, SedScratch, TraversalStrings};
use tsj_tree::Tree;

/// Evaluates the STR similarity self-join at threshold `tau`.
pub fn str_join(trees: &[Tree], tau: u32) -> JoinOutcome {
    // One set of banded-DP row buffers for every filtered pair: the
    // filter itself is allocation-free once the band has grown.
    let mut scratch = SedScratch::new();
    filter_verify_join(
        trees,
        tau,
        || trees.iter().map(TraversalStrings::new).collect::<Vec<_>>(),
        move |strings, i, j| traversal_within_with(&strings[i], &strings[j], tau, &mut scratch),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_ted::ted;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(specs: &[&str]) -> Vec<Tree> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect()
    }

    #[test]
    fn finds_identical_and_near_trees() {
        let trees = collection(&["{a{b}{c}}", "{a{b}{c}}", "{a{b}{z}}", "{q{w{e{r{t}}}}}"]);
        let outcome = str_join(&trees, 1);
        assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn empty_at_tau_zero_for_distinct_trees() {
        let trees = collection(&["{a{b}}", "{a{c}}", "{b{a}}"]);
        let outcome = str_join(&trees, 0);
        assert!(outcome.pairs.is_empty());
    }

    #[test]
    fn figure3_pair_requires_tau_three() {
        let trees = collection(&["{1{2}{1{3}}}", "{1{2{1}{3}}}"]);
        assert_eq!(ted(&trees[0], &trees[1]), 3);
        assert!(str_join(&trees, 2).pairs.is_empty());
        assert_eq!(str_join(&trees, 3).pairs, vec![(0, 1)]);
        // The traversal bound is 2 < 3, so at τ=2 the pair *is* a
        // candidate (false positive) but verification rejects it.
        let at2 = str_join(&trees, 2);
        assert_eq!(at2.stats.candidates, 1);
        assert_eq!(at2.stats.results, 0);
    }

    #[test]
    fn candidates_bounded_by_examined_pairs() {
        let trees = collection(&[
            "{a{b}{c}}",
            "{a{b}{c}{d}}",
            "{a{x}{y}}",
            "{a{b{c{d{e}}}}}",
            "{z}",
        ]);
        for tau in 0..4 {
            let outcome = str_join(&trees, tau);
            assert!(outcome.stats.candidates <= outcome.stats.pairs_examined);
            assert!(outcome.stats.results <= outcome.stats.candidates);
        }
    }

    #[test]
    fn single_tree_collection() {
        let trees = collection(&["{a{b}}"]);
        let outcome = str_join(&trees, 5);
        assert!(outcome.pairs.is_empty());
        assert_eq!(outcome.stats.pairs_examined, 0);
    }
}
