//! Regenerates every table and figure of the paper's evaluation (§4).
//!
//! ```bash
//! cargo run --release -p tsj-bench --bin experiments -- <command> [options]
//! ```
//!
//! Commands:
//!
//! * `table1`              — dataset statistics (realized vs paper)
//! * `fig10`               — runtime vs τ (candgen/TED split), 4 datasets
//! * `fig11`               — #candidates vs τ (+ REL), 4 datasets
//! * `fig12`               — runtime vs cardinality at τ = 3
//! * `fig13`               — #candidates vs cardinality at τ = 3
//! * `fig14 --param P`     — sensitivity, P ∈ fanout|depth|labels|size
//! * `ablation-partition`  — max-min vs random partitioning (§4.3 note)
//! * `ablation-window`     — postorder window policies (correction study)
//! * `ablation-matching`   — exact vs embedding subgraph matching
//! * `catalog`             — freeze/save/reuse a snapshot, serve probes
//!   (requires `--catalog <path>`: freezes and saves when the file is
//!   absent, loads and reuses it when present; either way the served
//!   join is cross-checked against a fresh `sharded_rs_join` and the
//!   process exits nonzero on any mismatch)
//! * `metrics`             — runs a representative workload through
//!   every layer (batch join, sharded join, frozen catalog, streaming,
//!   faulty cluster on a virtual clock), then prints the merged
//!   [`tsj_obs`] metrics in both export formats and self-validates
//!   them: the Prometheus text must pass
//!   [`tsj_obs::export::validate_prometheus`] (no duplicate series,
//!   cumulative buckets monotone), counters must be monotone across
//!   two passes, and the JSON must round-trip through
//!   [`tsj_bench::compare::parse_json`]. Exits nonzero on any failure —
//!   the CI metrics smoke.
//! * `all`                 — everything above in sequence (except
//!   `catalog`, which needs a path)
//!
//! Options: `--scale F` multiplies the default cardinalities (default 1.0;
//! the paper's full scale is reached around `--scale 50` for Swissprot),
//! `--seed N` changes the generator seed (default 2015),
//! `--shards N` (default 1) runs the `PRT` rows through the sharded join
//! (`tsj-shard`: parallel candidate generation, results bit-identical),
//! `--catalog PATH` names the snapshot file of the `catalog` command,
//! `--tau N` (default 3) sets its freeze threshold, and `--adaptive`
//! runs the `PRT` rows with [`AdaptiveConfig::FULL`] (online verify-chain
//! reordering + balanced shard maps) — results are bit-identical to the
//! static path, so the flag only moves the time and per-stage columns.

use partsj::{
    partsj_join_detailed, partsj_join_with, AdaptiveConfig, MatchSemantics, PartSjConfig,
    PartitionScheme, WindowPolicy,
};
use std::time::Instant;
use tsj_bench::{
    dataset_with_stats, render_table, secs, stage_columns, stage_count, stats_row, Dataset, Method,
};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_ted::JoinOutcome;
use tsj_tree::Tree;

#[derive(Debug, Clone)]
struct Options {
    scale: f64,
    seed: u64,
    param: Option<String>,
    shards: usize,
    catalog: Option<String>,
    tau: u32,
    adaptive: bool,
}

impl Options {
    /// The `PartSjConfig` the `PRT` rows run with.
    fn prt_config(&self) -> PartSjConfig {
        PartSjConfig {
            adaptive: if self.adaptive {
                AdaptiveConfig::FULL
            } else {
                AdaptiveConfig::OFF
            },
            ..Default::default()
        }
    }
}

fn parse_args() -> (String, Options) {
    let mut args = std::env::args().skip(1);
    let command = args.next().unwrap_or_else(|| {
        eprintln!("usage: experiments <table1|fig10|fig11|fig12|fig13|fig14|ablation-partition|ablation-window|ablation-matching|catalog|metrics|all> [--scale F] [--seed N] [--param P] [--shards N] [--catalog PATH] [--tau N] [--adaptive]");
        std::process::exit(2);
    });
    let mut options = Options {
        scale: 1.0,
        seed: 2015,
        param: None,
        shards: 1,
        catalog: None,
        tau: 3,
        adaptive: false,
    };
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--scale" => options.scale = value().parse().expect("numeric --scale"),
            "--seed" => options.seed = value().parse().expect("integer --seed"),
            "--param" => options.param = Some(value()),
            "--shards" => options.shards = value().parse().expect("integer --shards"),
            "--catalog" => options.catalog = Some(value()),
            "--tau" => options.tau = value().parse().expect("integer --tau"),
            "--adaptive" => options.adaptive = true,
            other => {
                eprintln!("unknown option {other}");
                std::process::exit(2);
            }
        }
    }
    (command, options)
}

fn scaled(n: usize, scale: f64) -> usize {
    ((n as f64 * scale).round() as usize).max(10)
}

fn main() {
    let (command, options) = parse_args();
    match command.as_str() {
        "table1" => table1(&options),
        "fig10" => fig10_11(&options, true),
        "fig11" => fig10_11(&options, false),
        "fig12" => fig12_13(&options, true),
        "fig13" => fig12_13(&options, false),
        "fig14" => {
            let param = options.param.clone().unwrap_or_else(|| {
                eprintln!("fig14 requires --param fanout|depth|labels|size");
                std::process::exit(2);
            });
            fig14(&options, &param);
        }
        "ablation-partition" => ablation_partition(&options),
        "ablation-window" => ablation_window(&options),
        "ablation-matching" => ablation_matching(&options),
        "catalog" => catalog_cmd(&options),
        "metrics" => metrics_cmd(&options),
        "all" => {
            table1(&options);
            fig10_11(&options, true);
            fig10_11(&options, false);
            fig12_13(&options, true);
            fig12_13(&options, false);
            for param in ["fanout", "depth", "labels", "size"] {
                fig14(&options, param);
            }
            ablation_partition(&options);
            ablation_window(&options);
            ablation_matching(&options);
            metrics_cmd(&options);
        }
        other => {
            eprintln!("unknown command {other}");
            std::process::exit(2);
        }
    }
}

/// Dataset statistics: the realized simulator stats against the paper's.
fn table1(options: &Options) {
    println!("\n== Dataset statistics (cf. §4 dataset descriptions & Table 1) ==");
    println!(
        "(simulated stand-ins for the real datasets; --scale {} of harness defaults)\n",
        options.scale
    );
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let n = scaled(dataset.default_cardinality(), options.scale);
        let (_, stats) = dataset_with_stats(dataset, n, options.seed);
        rows.push(stats_row(dataset, &stats));
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "trees",
                "avg size",
                "labels",
                "avg depth",
                "max depth"
            ],
            &rows
        )
    );
}

/// Figures 10 & 11: τ sweep per dataset; runtime split and candidates.
fn fig10_11(options: &Options, runtime: bool) {
    let which = if runtime {
        "Figure 10 (runtime vs τ)"
    } else {
        "Figure 11 (candidates vs τ)"
    };
    println!("\n== {which} ==\n");
    if options.adaptive {
        println!("(PRT rows run with AdaptiveConfig::FULL)\n");
    }
    let config = options.prt_config();
    for dataset in Dataset::ALL {
        let n = scaled(dataset.default_cardinality(), options.scale);
        let trees = dataset.generate(n, options.seed);
        println!("-- {} ({} trees) --", dataset.name(), n);
        let mut rows = Vec::new();
        for tau in 1..=5u32 {
            let mut rel = None;
            for method in Method::ALL {
                let outcome = method.run_sharded_with(&trees, tau, options.shards, &config);
                rel.get_or_insert(outcome.stats.results);
                if runtime {
                    rows.push(vec![
                        format!("{tau}"),
                        method.name().into(),
                        secs(outcome.stats.candidate_time),
                        secs(outcome.stats.verify_time),
                        secs(outcome.stats.total_time()),
                    ]);
                } else {
                    rows.push(candidate_row(format!("{tau}"), method, &outcome.stats));
                }
            }
        }
        if runtime {
            println!(
                "{}",
                render_table(
                    &["tau", "method", "candgen(s)", "ted(s)", "total(s)"],
                    &rows
                )
            );
        } else {
            println!("{}", render_table(&candidate_header("tau"), &rows));
        }
    }
}

/// Header of the candidate tables: key column, method, candidates, the
/// per-stage kill counters, exact TED calls, and result pairs.
fn candidate_header(key: &'static str) -> Vec<&'static str> {
    let mut header = vec![key, "method", "candidates"];
    header.extend(stage_columns());
    header.push("ted calls");
    header.push("REL");
    header
}

/// One candidate-table row, aligned with [`candidate_header`]: where the
/// method's candidates died, stage by stage, then the exact TED calls.
fn candidate_row(key: String, method: Method, stats: &tsj_ted::JoinStats) -> Vec<String> {
    let mut row = vec![key, method.name().into(), format!("{}", stats.candidates)];
    for stage in stage_columns() {
        row.push(format!("{}", stage_count(stats, stage)));
    }
    row.push(format!("{}", stats.ted_calls));
    row.push(format!("{}", stats.results));
    row
}

/// Figures 12 & 13: cardinality sweep at τ = 3.
fn fig12_13(options: &Options, runtime: bool) {
    let which = if runtime {
        "Figure 12 (runtime vs cardinality, tau = 3)"
    } else {
        "Figure 13 (candidates vs cardinality, tau = 3)"
    };
    println!("\n== {which} ==\n");
    let config = options.prt_config();
    let tau = 3;
    for dataset in Dataset::ALL {
        let full = scaled(dataset.default_cardinality(), options.scale);
        // The paper sweeps five cardinalities up to the full size.
        let steps: Vec<usize> = (1..=5).map(|i| full * i / 5).collect();
        let trees = dataset.generate(full, options.seed);
        println!("-- {} (up to {} trees) --", dataset.name(), full);
        let mut rows = Vec::new();
        for &n in &steps {
            let slice = &trees[..n];
            for method in Method::ALL {
                let outcome = method.run_sharded_with(slice, tau, options.shards, &config);
                if runtime {
                    rows.push(vec![
                        format!("{n}"),
                        method.name().into(),
                        secs(outcome.stats.candidate_time),
                        secs(outcome.stats.verify_time),
                        secs(outcome.stats.total_time()),
                    ]);
                } else {
                    rows.push(candidate_row(format!("{n}"), method, &outcome.stats));
                }
            }
        }
        if runtime {
            println!(
                "{}",
                render_table(
                    &["trees", "method", "candgen(s)", "ted(s)", "total(s)"],
                    &rows
                )
            );
        } else {
            println!("{}", render_table(&candidate_header("trees"), &rows));
        }
    }
}

/// Figure 14: sensitivity to one synthetic parameter (runtime and
/// candidates in one table — the paper splits them into subfigure pairs).
fn fig14(options: &Options, param: &str) {
    let (values, label): (Vec<usize>, &str) = match param {
        "fanout" => (vec![2, 3, 4, 5, 6], "max fanout f (Fig. 14a/b)"),
        "depth" => (vec![4, 5, 6, 7, 8], "max depth d (Fig. 14c/d)"),
        "labels" => (vec![3, 5, 10, 20, 50], "labels l (Fig. 14e/f)"),
        "size" => (vec![40, 80, 120, 160, 200], "avg size t (Fig. 14g/h)"),
        other => {
            eprintln!("unknown --param {other}");
            std::process::exit(2);
        }
    };
    let tau = 3;
    let config = options.prt_config();
    let n = scaled(Dataset::Synthetic.default_cardinality(), options.scale);
    println!("\n== Figure 14: sensitivity to {label} ({n} trees, tau = {tau}) ==\n");
    let mut rows = Vec::new();
    for &value in &values {
        let mut params = SyntheticParams::default();
        match param {
            "fanout" => params.fanout = value,
            "depth" => params.depth = value,
            "labels" => params.labels = value as u32,
            _ => params.avg_size = value,
        }
        let trees = synthetic(n, &params, options.seed);
        for method in Method::ALL {
            let outcome = method.run_sharded_with(&trees, tau, options.shards, &config);
            rows.push(vec![
                format!("{value}"),
                method.name().into(),
                secs(outcome.stats.candidate_time),
                secs(outcome.stats.verify_time),
                secs(outcome.stats.total_time()),
                format!("{}", outcome.stats.candidates),
                format!("{}", outcome.stats.results),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                param,
                "method",
                "candgen(s)",
                "ted(s)",
                "total(s)",
                "candidates",
                "REL"
            ],
            &rows
        )
    );
}

/// Catalog snapshot save/reuse: freeze + save on the first run, load +
/// reuse on every later one, and cross-check the served join against a
/// fresh `sharded_rs_join` either way (nonzero exit on mismatch) — the
/// CI round-trip smoke.
fn catalog_cmd(options: &Options) {
    use tsj_catalog::Catalog;
    use tsj_shard::{sharded_rs_join, ShardConfig};

    let Some(path) = options.catalog.as_deref() else {
        eprintln!("the catalog command requires --catalog <path>");
        std::process::exit(2);
    };
    let tau = options.tau;
    let config = PartSjConfig::default();
    let shard_cfg = ShardConfig::with_shards(options.shards.max(1));
    let n = scaled(Dataset::Swissprot.default_cardinality(), options.scale) / 2;
    let left = Dataset::Swissprot.generate(n, options.seed);
    let probes = Dataset::Swissprot.generate(n / 4, options.seed + 1);
    println!(
        "\n== Catalog service ({} catalog trees, {} probes, tau = {tau}, {} shards) ==\n",
        left.len(),
        probes.len(),
        shard_cfg.shards
    );

    let existed = std::path::Path::new(path).exists();
    let start = Instant::now();
    let catalog = if existed {
        let loaded = Catalog::load(path).unwrap_or_else(|e| {
            eprintln!("failed to load snapshot {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "reuse: loaded snapshot {path} ({} shards, frozen tau {}) in {}s",
            loaded.shard_count(),
            loaded.tau(),
            secs(start.elapsed())
        );
        // The snapshot records neither seed nor scale, so this guard
        // can only catch gross mismatches; a same-size snapshot from a
        // different seed/scale surfaces below as a cross-check
        // MISMATCH — the hint there covers that case.
        if loaded.tau() < tau || loaded.len() != left.len() {
            eprintln!(
                "snapshot {path} was frozen for tau {} / {} trees, expected tau >= {tau} / {} \
                 trees — delete it and rerun",
                loaded.tau(),
                loaded.len(),
                left.len()
            );
            std::process::exit(1);
        }
        loaded
    } else {
        let frozen = Catalog::freeze(
            left.clone(),
            tsj_tree::LabelInterner::new(),
            tau,
            &config,
            &shard_cfg,
        );
        frozen.save(path).unwrap_or_else(|e| {
            eprintln!("failed to save snapshot {path}: {e}");
            std::process::exit(1);
        });
        println!(
            "save: froze and wrote snapshot {path} in {}s",
            secs(start.elapsed())
        );
        frozen
    };

    let mut rows = Vec::new();
    let mut failed = false;
    // Serve the frozen threshold plus one smaller per-query threshold.
    let mut thresholds = vec![tau.saturating_sub(1), tau];
    thresholds.dedup();
    for tau_q in thresholds {
        let start = Instant::now();
        let served = catalog
            .join(&probes, tau_q, &config, &shard_cfg)
            .expect("tau_q within the frozen ceiling");
        let served_time = start.elapsed();
        let start = Instant::now();
        let direct = sharded_rs_join(&left, &probes, tau_q, &config, &shard_cfg);
        let direct_time = start.elapsed();
        let agree = served.pairs == direct.pairs;
        failed |= !agree;
        rows.push(vec![
            format!("{tau_q}"),
            format!("{}", served.stats.results),
            format!("{}", served.stats.candidates),
            secs(served_time),
            secs(direct_time),
            if agree {
                "ok".into()
            } else {
                "MISMATCH".into()
            },
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "tau",
                "pairs",
                "candidates",
                "served(s)",
                "rebuild(s)",
                "vs direct"
            ],
            &rows
        )
    );
    if failed {
        eprintln!(
            "catalog-served join disagrees with the direct join. If the snapshot at {path} \
             was recorded with a different --seed or --scale, it holds different trees than \
             this run generated — delete it and rerun; otherwise this is a real soundness bug."
        );
        std::process::exit(1);
    }
}

/// The observability smoke: exercise every instrumented layer, export
/// the merged metrics both ways, and self-validate the exports — exit
/// nonzero on any violation so CI can gate on it.
fn metrics_cmd(options: &Options) {
    use std::sync::Arc;
    use tsj_bench::compare::parse_json;
    use tsj_catalog::Catalog;
    use tsj_cluster::{Cluster, ClusterConfig, FaultPlan, VirtualClock};
    use tsj_obs::export::{to_json, to_prometheus, validate_prometheus};
    use tsj_obs::MetricsSnapshot;
    use tsj_shard::{sharded_join, EvictionPolicy, ShardConfig, ShardedStreamingJoin};

    let tau = 2u32;
    let config = PartSjConfig::default();
    let shard_cfg = ShardConfig {
        shards: options.shards.max(2),
        probe_threads: 1,
        verify_threads: 1,
        ..Default::default()
    };
    let n = scaled(48, options.scale);
    let trees = synthetic(
        n,
        &SyntheticParams {
            avg_size: 12,
            ..Default::default()
        },
        options.seed,
    );
    let probes = synthetic(
        n / 3,
        &SyntheticParams {
            avg_size: 12,
            ..Default::default()
        },
        options.seed + 1,
    );
    println!(
        "\n== Metrics smoke ({n} trees, {} probes, tau = {tau}, {} shards) ==\n",
        probes.len(),
        shard_cfg.shards
    );

    // One catalog and one faulty cluster, long-lived so counters
    // accumulate across passes.
    let catalog = Catalog::freeze(
        trees.clone(),
        tsj_tree::LabelInterner::new(),
        tau,
        &config,
        &shard_cfg,
    );
    let mut cluster_cfg = ClusterConfig::new(3, 2);
    cluster_cfg.faults = FaultPlan {
        seed: options.seed,
        delay_permille: 120,
        delay_ms: 4,
        timeout_permille: 60,
        transient_permille: 100,
        node_down_permille: 30,
        ..FaultPlan::none()
    };
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &cluster_cfg)
        .unwrap_or_else(|e| {
            eprintln!("metrics smoke: snapshot assembly failed: {e}");
            std::process::exit(1);
        })
        .with_clock(Arc::new(VirtualClock::new()));

    // Every instrumented layer once per pass: batch join, sharded join,
    // catalog search, streaming with eviction, cluster scatter/gather.
    let run_pass = |cluster: &mut Cluster| {
        let _ = partsj_join_with(&trees, tau, &config);
        let _ = sharded_join(&trees, tau, &config, &shard_cfg);
        for probe in &probes {
            let _ = catalog
                .query(probe, tau, &config)
                .expect("tau within the frozen ceiling");
        }
        let mut stream = ShardedStreamingJoin::new(
            tau,
            config,
            ShardConfig {
                max_dead_fraction: 0.3,
                min_dead_postings: 1,
                ..shard_cfg
            },
            EvictionPolicy::SlidingCount(8),
        );
        for tree in trees.iter().chain(probes.iter()) {
            let _ = stream.insert(tree);
        }
        cluster
            .join(&probes, tau, &config)
            .expect("faults alone never error the join");
    };
    let merged = |cluster: &Cluster| {
        let mut snapshot: MetricsSnapshot = tsj_obs::global().snapshot();
        snapshot.merge(&cluster.metrics_snapshot());
        snapshot
    };

    run_pass(&mut cluster);
    let first = merged(&cluster);
    run_pass(&mut cluster);
    let second = merged(&cluster);

    let mut failures = Vec::new();

    // Counters only ever go up: everything the first pass recorded must
    // still be there, no lower, after the second.
    for (name, before) in &first.counters {
        match second.counter(name) {
            Some(after) if after >= *before => {}
            Some(after) => failures.push(format!(
                "counter {name} went backwards: {before} -> {after}"
            )),
            None => failures.push(format!("counter {name} vanished between passes")),
        }
    }

    // The workload must actually have reached every layer.
    for required in [
        "tsj_core_joins_total",
        "tsj_shard_trees_inserted_total",
        "tsj_shard_evictions_total",
        "tsj_catalog_freezes_total",
        "tsj_catalog_saves_total",
        "tsj_cluster_joins_total",
    ] {
        if second.counter(required).unwrap_or(0) == 0 {
            failures.push(format!("required series {required} is missing or zero"));
        }
    }

    let prometheus = to_prometheus(&second);
    match validate_prometheus(&prometheus) {
        Ok(report) => println!(
            "prometheus: {} families, {} series, {} samples — valid",
            report.families, report.series, report.samples
        ),
        Err(e) => failures.push(format!("prometheus output invalid: {e}")),
    }

    let json = to_json(&second);
    match parse_json(&json) {
        Ok(value) => {
            for section in ["counters", "gauges", "histograms"] {
                if value.get(section).is_none() {
                    failures.push(format!("json export lacks the {section:?} object"));
                }
            }
            println!(
                "json: {} bytes — parses and carries all three sections",
                json.len()
            );
        }
        Err(e) => failures.push(format!("json export does not parse: {e}")),
    }

    println!("\n--- prometheus ---\n{prometheus}");
    println!("--- json ---\n{json}\n");

    if !failures.is_empty() {
        for failure in &failures {
            eprintln!("metrics smoke FAILED: {failure}");
        }
        std::process::exit(1);
    }
    println!("metrics smoke: all checks passed");
}

/// §4.3 closing note: the max-min partitioning scheme vs random cuts.
fn ablation_partition(options: &Options) {
    println!("\n== Partitioning-scheme ablation (§4.3 closing note) ==\n");
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let n = scaled(dataset.default_cardinality(), options.scale) / 2;
        let trees = dataset.generate(n, options.seed);
        for tau in [1u32, 3] {
            let schemes = [
                ("max-min", PartitionScheme::MaxMin),
                ("random", PartitionScheme::Random { seed: options.seed }),
            ];
            for (name, scheme) in schemes {
                let config = PartSjConfig {
                    partitioning: scheme,
                    ..Default::default()
                };
                let start = Instant::now();
                let (outcome, detail) = partsj_join_detailed(&trees, tau, &config);
                rows.push(vec![
                    dataset.name().into(),
                    format!("{tau}"),
                    name.into(),
                    format!("{}", outcome.stats.candidates),
                    format!("{}", detail.match_attempts),
                    format!("{}", outcome.stats.results),
                    secs(start.elapsed()),
                ]);
            }
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "tau",
                "scheme",
                "candidates",
                "match attempts",
                "REL",
                "total(s)"
            ],
            &rows
        )
    );
    println!("The paper reports 50%-300% improvement of the max-min scheme over random cuts.");
}

/// Window-policy ablation: the reproduction's §3.4 correction.
fn ablation_window(options: &Options) {
    println!("\n== Postorder-window ablation (reproduction correction of §3.4) ==\n");
    println!(
        "Safe   = general-postorder suffix keys, width tau (provably complete; default)\n\
         Tight  = paper's width tau - floor(k/2) in corrected coordinates\n\
         Paper  = literal absolute-postorder keys, paper width\n"
    );
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let n = scaled(dataset.default_cardinality(), options.scale) / 2;
        let trees = dataset.generate(n, options.seed);
        let tau = 3;
        let reference: JoinOutcome = partsj_join_with(&trees, tau, &PartSjConfig::default());
        for (name, window) in [
            ("Safe", WindowPolicy::Safe),
            ("Tight", WindowPolicy::Tight),
            ("Paper", WindowPolicy::PaperAbsolute),
        ] {
            let config = PartSjConfig {
                window,
                ..Default::default()
            };
            let start = Instant::now();
            let (outcome, detail) = partsj_join_detailed(&trees, tau, &config);
            let missed = reference
                .pairs
                .iter()
                .filter(|p| !outcome.pairs.contains(p))
                .count();
            rows.push(vec![
                dataset.name().into(),
                name.into(),
                format!("{}", outcome.stats.candidates),
                format!("{}", detail.index_registrations),
                format!("{}", outcome.stats.results),
                format!("{missed}"),
                secs(start.elapsed()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "window",
                "candidates",
                "registrations",
                "REL",
                "missed",
                "total(s)"
            ],
            &rows
        )
    );
}

/// Matching-semantics ablation: how much do the exact absence constraints
/// prune compared to prefix-embedding matching?
fn ablation_matching(options: &Options) {
    println!("\n== Matching-semantics ablation (Exact vs Embedding, tau = 3) ==\n");
    let mut rows = Vec::new();
    for dataset in Dataset::ALL {
        let n = scaled(dataset.default_cardinality(), options.scale) / 2;
        let trees = dataset.generate(n, options.seed);
        for (name, matching) in [
            ("exact", MatchSemantics::Exact),
            ("embedding", MatchSemantics::Embedding),
        ] {
            let config = PartSjConfig {
                matching,
                ..Default::default()
            };
            let start = Instant::now();
            let (outcome, detail) = partsj_join_detailed(&trees, 3, &config);
            rows.push(vec![
                dataset.name().into(),
                name.into(),
                format!("{}", outcome.stats.candidates),
                format!("{}", detail.match_attempts),
                format!("{}", outcome.stats.results),
                secs(start.elapsed()),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "matching",
                "candidates",
                "match attempts",
                "REL",
                "total(s)"
            ],
            &rows
        )
    );
}

// Silence the unused-import lint for Tree, which only appears in
// signatures above under some feature selections.
#[allow(dead_code)]
fn _assert_types(_: &[Tree]) {}
