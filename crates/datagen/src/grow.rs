//! Core random tree growth.
//!
//! All collection generators share one growth process: starting from a
//! root, nodes are attached one at a time to a randomly chosen *open* node
//! (one whose fanout and depth constraints still allow children). A
//! `deepen_prob` knob skews the choice toward the most recently added open
//! node, which produces chain-like deep trees (Treebank-style parses) at
//! high values and bushy flat trees (Swissprot-style records) at zero.

use rand::Rng;
use tsj_tree::{Label, Tree, TreeBuilder};

/// Shape constraints and bias for [`grow_tree`].
#[derive(Debug, Clone, Copy)]
pub struct ShapeProfile {
    /// Maximum number of children per node.
    pub max_fanout: usize,
    /// Maximum node depth (root = 0), i.e. the paper's "maximum depth".
    pub max_depth: usize,
    /// Probability of attaching to the deepest open node instead of a
    /// uniformly random one. 0 = uniform (flat), near 1 = chains (deep).
    pub deepen_prob: f64,
}

impl ShapeProfile {
    /// Validates the profile (non-zero fanout, probability in `[0, 1]`).
    pub fn validate(&self) -> Result<(), String> {
        if self.max_fanout == 0 {
            return Err("max_fanout must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.deepen_prob) {
            return Err(format!("deepen_prob {} not in [0, 1]", self.deepen_prob));
        }
        Ok(())
    }
}

/// Grows a random tree with up to `target_size` nodes.
///
/// The tree may be smaller than `target_size` when the shape constraints
/// exhaust all open slots (e.g. fanout 2 and depth 5 admit at most 63
/// nodes). Labels are drawn uniformly from `1..=num_labels`.
pub fn grow_tree<R: Rng>(
    rng: &mut R,
    target_size: usize,
    num_labels: u32,
    profile: &ShapeProfile,
) -> Tree {
    debug_assert!(profile.validate().is_ok());
    debug_assert!(num_labels >= 1);
    let random_label = |rng: &mut R| Label::from_raw(rng.gen_range(1..=num_labels));

    let mut builder = TreeBuilder::with_capacity(target_size.max(1));
    let root = builder.root(random_label(rng));

    // Open nodes: (node, depth, children_so_far). The most recently pushed
    // entry is the "deepest frontier" used by the deepen bias.
    struct Open {
        node: tsj_tree::NodeId,
        depth: usize,
        children: usize,
    }
    let mut open: Vec<Open> = vec![Open {
        node: root,
        depth: 0,
        children: 0,
    }];

    while builder.len() < target_size && !open.is_empty() {
        let slot = if rng.gen_bool(profile.deepen_prob) {
            open.len() - 1
        } else {
            rng.gen_range(0..open.len())
        };
        let depth = open[slot].depth;
        let child = builder.child(open[slot].node, random_label(rng));
        open[slot].children += 1;
        if open[slot].children >= profile.max_fanout {
            open.swap_remove(slot);
        }
        if depth + 1 < profile.max_depth {
            open.push(Open {
                node: child,
                depth: depth + 1,
                children: 0,
            });
        } else if depth + 1 == profile.max_depth {
            // Node at max depth may still exist but takes no children.
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn profile(fanout: usize, depth: usize, deepen: f64) -> ShapeProfile {
        ShapeProfile {
            max_fanout: fanout,
            max_depth: depth,
            deepen_prob: deepen,
        }
    }

    #[test]
    fn grows_to_target_size_when_feasible() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let tree = grow_tree(&mut rng, 80, 20, &profile(3, 5, 0.3));
            assert_eq!(tree.len(), 80);
            tree.validate().unwrap();
        }
    }

    #[test]
    fn respects_fanout_and_depth() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let tree = grow_tree(&mut rng, 100, 10, &profile(3, 4, 0.2));
            assert!(tree.max_fanout() <= 3);
            assert!(tree.max_depth() <= 4);
        }
    }

    #[test]
    fn stops_when_shape_is_exhausted() {
        // Fanout 2, depth 3: at most 1 + 2 + 4 + 8 = 15 nodes.
        let mut rng = StdRng::seed_from_u64(1);
        let tree = grow_tree(&mut rng, 1000, 5, &profile(2, 3, 0.0));
        assert!(tree.len() <= 15);
        assert!(tree.max_depth() <= 3);
    }

    #[test]
    fn deepen_bias_increases_depth() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut flat_depths = 0u32;
        let mut deep_depths = 0u32;
        for _ in 0..30 {
            flat_depths += grow_tree(&mut rng, 60, 10, &profile(4, 40, 0.0)).max_depth();
            deep_depths += grow_tree(&mut rng, 60, 10, &profile(4, 40, 0.85)).max_depth();
        }
        assert!(
            deep_depths > flat_depths,
            "deepen bias must yield deeper trees ({deep_depths} vs {flat_depths})"
        );
    }

    #[test]
    fn labels_within_range() {
        let mut rng = StdRng::seed_from_u64(5);
        let tree = grow_tree(&mut rng, 200, 7, &profile(5, 10, 0.4));
        for node in tree.node_ids() {
            let raw = tree.label(node).raw();
            assert!((1..=7).contains(&raw));
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t1 = grow_tree(
            &mut StdRng::seed_from_u64(1234),
            50,
            10,
            &profile(3, 6, 0.5),
        );
        let t2 = grow_tree(
            &mut StdRng::seed_from_u64(1234),
            50,
            10,
            &profile(3, 6, 0.5),
        );
        assert!(t1.structurally_eq(&t2));
    }

    #[test]
    fn single_node_target() {
        let tree = grow_tree(&mut StdRng::seed_from_u64(0), 1, 3, &profile(2, 2, 0.0));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn profile_validation() {
        assert!(profile(0, 3, 0.5).validate().is_err());
        assert!(profile(2, 3, 1.5).validate().is_err());
        assert!(profile(2, 3, 0.5).validate().is_ok());
    }
}
