//! Multi-core PartSJ (§6's future-work direction, built as an extension).
//!
//! Candidate generation is inherently sequential — the index is populated
//! while the join runs, so probe order matters — but verification is
//! embarrassingly parallel. This variant runs the standard candidate
//! pipeline on the caller's thread and streams candidate pairs, in batches
//! of [`PartSjConfig::verify_batch`], through a *bounded* crossbeam
//! channel to a pool of verifier threads, each owning a private
//! [`TedEngine`](tsj_ted::TedEngine). Batching amortizes channel
//! synchronization over many
//! pairs; the bound applies backpressure so a fast producer cannot queue
//! unbounded memory ahead of slow verifiers. Each worker owns a private
//! [`VerifyEngine`] running the same filter chain as the sequential join
//! before paying for the cubic TED DP. Result sets are identical to the
//! sequential join.

use crate::config::PartSjConfig;
use crate::index::{LayerId, MatchCache, SubgraphIndex};
use crate::partition::cuts_for;
use crate::probe::{probe_tree_nodes, resolve_layers, CandidateSink, ProbeCounters, ProbeScratch};
use crate::subgraph::build_subgraphs;
use crate::verify::{VerifyData, VerifyEngine};
use crossbeam::channel;
use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, TreeIdx};
use tsj_tree::{FxHashMap, Tree};

/// Sink that streams accepted candidates to the verifier pool in batches
/// of `batch_size` instead of buffering them locally.
struct BatchSink<'a> {
    stamp: &'a mut [TreeIdx],
    probe: TreeIdx,
    batch: &'a mut Vec<(TreeIdx, TreeIdx)>,
    batch_size: usize,
    tx: &'a channel::Sender<Vec<(TreeIdx, TreeIdx)>>,
    candidates_total: &'a mut u64,
}

impl CandidateSink for BatchSink<'_> {
    #[inline]
    fn admit(&mut self, tree: TreeIdx) -> bool {
        self.stamp[tree as usize] != self.probe
    }

    #[inline]
    fn accept(&mut self, tree: TreeIdx) {
        self.stamp[tree as usize] = self.probe;
        *self.candidates_total += 1;
        self.batch.push((self.probe, tree));
        if self.batch.len() >= self.batch_size {
            let full = std::mem::replace(self.batch, Vec::with_capacity(self.batch_size));
            self.tx.send(full).expect("verifier pool alive");
        }
    }
}

/// Verifier-pool size used by [`partsj_join_parallel_auto`]: every core
/// the OS reports, minus nothing — candidate generation shares the
/// producer thread.
pub fn default_verify_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// PartSJ with parallel verification sized to the machine
/// ([`default_verify_threads`]).
pub fn partsj_join_parallel_auto(trees: &[Tree], tau: u32, config: &PartSjConfig) -> JoinOutcome {
    partsj_join_parallel(trees, tau, config, default_verify_threads())
}

/// PartSJ with parallel verification over `threads` workers.
///
/// Falls back to the sequential join for `threads ≤ 1` or inputs smaller
/// than [`PartSjConfig::parallel_fallback`].
pub fn partsj_join_parallel(
    trees: &[Tree],
    tau: u32,
    config: &PartSjConfig,
    threads: usize,
) -> JoinOutcome {
    let threads = threads.max(1);
    if threads == 1 || trees.len() < config.parallel_fallback {
        return crate::join::partsj_join_with(trees, tau, config);
    }

    let delta = 2 * tau as usize + 1;
    let batch_size = config.verify_batch.max(1);
    let mut stats = JoinStats::default();

    let total_start = Instant::now();
    // Verification data is batch-prepared through one shared set of
    // build temporaries; the probing tree's LC-RS form and postorder
    // numbers are rebuilt in place per tree inside the candidate loop.
    let setup_start = Instant::now();
    let data: Vec<VerifyData> = VerifyData::batch_for_config(trees, &config.verify);
    let mut order: Vec<TreeIdx> = (0..trees.len() as TreeIdx).collect();
    order.sort_by_key(|&i| (trees[i as usize].len(), i));
    let mut candidate_time = setup_start.elapsed();

    // A few batches of slack per worker: enough to keep the pool fed,
    // bounded so the producer cannot run away from slow verifiers.
    let (tx, rx) = channel::bounded::<Vec<(TreeIdx, TreeIdx)>>(threads * 4);

    let (pairs, candidates_total, engines) = crossbeam::scope(|scope| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                let rx = rx.clone();
                let data = &data;
                scope.spawn(move |_| {
                    // One filter-chain engine per worker: private TED
                    // workspace, private per-stage counters.
                    let mut verify = VerifyEngine::new(tau, config);
                    let mut found = Vec::new();
                    while let Ok(batch) = rx.recv() {
                        for (i, j) in batch {
                            let (i, j) = (i as usize, j as usize);
                            if verify.check(&data[i], &data[j]).is_some() {
                                found.push((j as TreeIdx, i as TreeIdx));
                            }
                        }
                    }
                    (found, verify)
                })
            })
            .collect();
        drop(rx);

        // Candidate generation on this thread (identical to the
        // sequential join, but candidates are batched and sent instead of
        // buffered for local verification).
        let mut index = SubgraphIndex::new(tau, config.window);
        let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
        let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; trees.len()];
        let mut candidates_total = 0u64;
        let mut batch: Vec<(TreeIdx, TreeIdx)> = Vec::with_capacity(batch_size);
        let mut layer_window: Vec<LayerId> = Vec::new();
        let mut match_cache = MatchCache::new();
        let mut counters = ProbeCounters::default();
        let mut probe_scratch = ProbeScratch::new();

        for &i in &order {
            let phase_start = Instant::now();
            let (binary, posts) = probe_scratch.prepare(&trees[i as usize]);
            let size_i = binary.len() as u32;
            let lo = size_i.saturating_sub(tau).max(1);

            {
                let mut sink = BatchSink {
                    stamp: &mut stamp,
                    probe: i,
                    batch: &mut batch,
                    batch_size,
                    tx: &tx,
                    candidates_total: &mut candidates_total,
                };
                for n in lo..=size_i {
                    if let Some(list) = small_by_size.get(&n) {
                        for &j in list {
                            if sink.admit(j) {
                                sink.accept(j);
                            }
                        }
                    }
                }

                resolve_layers(&index, lo, size_i, &mut layer_window);
                probe_tree_nodes(
                    &index,
                    &layer_window,
                    binary,
                    posts,
                    size_i,
                    config.matching,
                    &mut match_cache,
                    &mut counters,
                    &mut sink,
                );
            }

            if (size_i as usize) < delta {
                small_by_size.entry(size_i).or_default().push(i);
            } else {
                let cuts = cuts_for(binary, delta, config.partitioning, u64::from(i));
                index.insert_tree(size_i, build_subgraphs(binary, posts, &cuts, i));
            }
            candidate_time += phase_start.elapsed();
        }
        if !batch.is_empty() {
            tx.send(batch).expect("verifier pool alive");
        }
        drop(tx);

        let mut pairs = Vec::new();
        let mut engines = Vec::new();
        for worker in workers {
            let (found, engine) = worker.join().expect("verifier panicked");
            pairs.extend(found);
            engines.push(engine);
        }
        (pairs, candidates_total, engines)
    })
    .expect("crossbeam scope failed");

    stats.candidate_time = candidate_time;
    stats.verify_time = total_start.elapsed().saturating_sub(candidate_time);
    stats.candidates = candidates_total;
    stats.pairs_examined = candidates_total;
    for engine in &engines {
        engine.fold_into(&mut stats);
    }
    JoinOutcome::new(pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::partsj_join_with;
    use tsj_tree::{parse_bracket, LabelInterner};

    #[test]
    fn parallel_matches_sequential() {
        // Build a collection large enough to avoid the fallback.
        let mut labels = LabelInterner::new();
        let base = [
            "{a{b}{c}{d}}",
            "{a{b}{c}{e}}",
            "{a{b}{c}}",
            "{q{w}{e}{r}}",
            "{q{w}{e}{r}{t}}",
            "{m{n{o}{p}}}",
        ];
        let trees: Vec<_> = (0..120)
            .map(|i| parse_bracket(base[i % base.len()], &mut labels).unwrap())
            .collect();
        for tau in [0u32, 1, 2] {
            let config = PartSjConfig::default();
            let seq = partsj_join_with(&trees, tau, &config);
            let par = partsj_join_parallel(&trees, tau, &config, 4);
            assert_eq!(seq.pairs, par.pairs, "tau = {tau}");
            assert_eq!(seq.stats.candidates, par.stats.candidates, "tau = {tau}");
            assert_eq!(
                seq.stats.prefilter_skips, par.stats.prefilter_skips,
                "tau = {tau}"
            );
        }
    }

    #[test]
    fn tiny_batches_and_auto_threads_match_sequential() {
        let mut labels = LabelInterner::new();
        let base = ["{a{b}{c}{d}}", "{a{b}{c}{e}}", "{a{b}{x}{d}}", "{z{y}}"];
        let trees: Vec<_> = (0..100)
            .map(|i| parse_bracket(base[i % base.len()], &mut labels).unwrap())
            .collect();
        // A batch size of 1 degenerates to per-pair sends and must still
        // be correct; so must the machine-sized auto pool.
        let config = PartSjConfig {
            verify_batch: 1,
            ..Default::default()
        };
        let seq = partsj_join_with(&trees, 1, &config);
        let par = partsj_join_parallel(&trees, 1, &config, 3);
        assert_eq!(seq.pairs, par.pairs);
        let auto = partsj_join_parallel_auto(&trees, 1, &PartSjConfig::default());
        assert_eq!(seq.pairs, auto.pairs);
    }

    #[test]
    fn fallback_threshold_is_configurable() {
        let mut labels = LabelInterner::new();
        let trees = vec![
            parse_bracket("{a{b}}", &mut labels).unwrap(),
            parse_bracket("{a{b}}", &mut labels).unwrap(),
        ];
        // Default threshold: 2 trees fall back to the sequential path.
        let outcome = partsj_join_parallel(&trees, 0, &PartSjConfig::default(), 8);
        assert_eq!(outcome.pairs, vec![(0, 1)]);
        // Forcing the parallel path on the same tiny input stays correct.
        let config = PartSjConfig {
            parallel_fallback: 0,
            ..Default::default()
        };
        let outcome = partsj_join_parallel(&trees, 0, &config, 2);
        assert_eq!(outcome.pairs, vec![(0, 1)]);
    }
}
