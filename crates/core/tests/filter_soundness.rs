//! Filter-chain soundness: every verification-chain configuration —
//! each stage toggled on/off, across thresholds and window policies —
//! must yield result pairs identical to filter-free exact-TED
//! verification. Lower-bound stages may only *reject* pairs whose TED
//! provably exceeds `τ`; upper-bound stages may only *admit* pairs with a
//! valid edit script of cost ≤ `τ`; so the chain never changes the
//! answer, only where candidates die.

use partsj::{
    partsj_join_parallel, partsj_join_rs, partsj_join_with, PartSjConfig, SearchIndex,
    StreamingJoin, VerifyConfig, VerifyEngine, WindowPolicy,
};
use tsj_datagen::{swissprot_like, synthetic, SyntheticParams};
use tsj_ted::{ted, TreeIdx};
use tsj_tree::Tree;

/// Every subset of the four stages.
fn all_verify_configs() -> Vec<VerifyConfig> {
    (0u32..16)
        .map(|mask| VerifyConfig {
            size: mask & 1 != 0,
            shape_accept: mask & 2 != 0,
            histogram: mask & 4 != 0,
            traversal: mask & 8 != 0,
        })
        .collect()
}

fn collection(n: usize, avg_size: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        seed,
    )
}

#[test]
fn every_chain_config_matches_filter_free_join() {
    // swissprot_like is mother-tree based: lots of near-duplicate
    // (rename-only) pairs, so the shape-accept stage actually fires.
    let trees = swissprot_like(70, 99);
    for window in [
        WindowPolicy::Safe,
        WindowPolicy::Tight,
        WindowPolicy::PaperAbsolute,
    ] {
        for tau in [0u32, 1, 3] {
            let reference = partsj_join_with(
                &trees,
                tau,
                &PartSjConfig {
                    window,
                    verify: VerifyConfig::NONE,
                    ..Default::default()
                },
            );
            for verify in all_verify_configs() {
                let config = PartSjConfig {
                    window,
                    verify,
                    ..Default::default()
                };
                let outcome = partsj_join_with(&trees, tau, &config);
                assert_eq!(
                    outcome.pairs, reference.pairs,
                    "window = {window:?}, tau = {tau}, verify = {verify:?}"
                );
                // Conservation: every candidate is resolved exactly once.
                assert_eq!(
                    outcome.stats.ted_calls
                        + outcome.stats.prefilter_skips
                        + outcome.stats.early_accepts,
                    outcome.stats.candidates,
                    "window = {window:?}, tau = {tau}, verify = {verify:?}"
                );
            }
        }
    }
}

#[test]
fn full_chain_reduces_ted_calls_on_near_duplicates() {
    let trees = swissprot_like(80, 7);
    for tau in [1u32, 3] {
        let bare = partsj_join_with(
            &trees,
            tau,
            &PartSjConfig {
                verify: VerifyConfig::NONE,
                ..Default::default()
            },
        );
        let full = partsj_join_with(&trees, tau, &PartSjConfig::default());
        assert_eq!(full.pairs, bare.pairs);
        assert!(
            full.stats.ted_calls < bare.stats.ted_calls,
            "tau = {tau}: chain must cut TED calls ({} vs {})",
            full.stats.ted_calls,
            bare.stats.ted_calls
        );
        assert!(full.stats.early_accepts > 0, "tau = {tau}");
        assert_eq!(full.stats.stage_counts.len(), 4);
    }
}

#[test]
fn parallel_join_is_sound_for_every_chain_config() {
    let trees = collection(90, 20, 11);
    let tau = 2;
    let reference = partsj_join_with(
        &trees,
        tau,
        &PartSjConfig {
            verify: VerifyConfig::NONE,
            ..Default::default()
        },
    );
    for verify in all_verify_configs() {
        let config = PartSjConfig {
            verify,
            parallel_fallback: 0,
            ..Default::default()
        };
        let outcome = partsj_join_parallel(&trees, tau, &config, 3);
        assert_eq!(outcome.pairs, reference.pairs, "verify = {verify:?}");
    }
}

#[test]
fn rs_join_is_sound_for_every_chain_config() {
    let left = collection(40, 18, 3);
    let right = swissprot_like(40, 4);
    let tau = 2;
    let reference = partsj_join_rs(
        &left,
        &right,
        tau,
        &PartSjConfig {
            verify: VerifyConfig::NONE,
            ..Default::default()
        },
    );
    for verify in all_verify_configs() {
        let config = PartSjConfig {
            verify,
            ..Default::default()
        };
        let outcome = partsj_join_rs(&left, &right, tau, &config);
        assert_eq!(outcome.pairs, reference.pairs, "verify = {verify:?}");
    }
}

#[test]
fn streaming_join_is_sound_for_every_chain_config() {
    let trees = swissprot_like(50, 21);
    let tau = 1;
    let collect = |verify: VerifyConfig| -> Vec<(TreeIdx, TreeIdx)> {
        let config = PartSjConfig {
            verify,
            ..Default::default()
        };
        let mut stream = StreamingJoin::new(tau, config);
        let mut pairs = Vec::new();
        for (i, tree) in trees.iter().enumerate() {
            for j in stream.insert(tree) {
                pairs.push((j, i as TreeIdx));
            }
        }
        pairs
    };
    let reference = collect(VerifyConfig::NONE);
    for verify in all_verify_configs() {
        assert_eq!(collect(verify), reference, "verify = {verify:?}");
    }
}

#[test]
fn search_distances_stay_exact_for_every_chain_config() {
    // `check_exact` must never surface an inexact upper-bound
    // certificate: hits are compared against brute-force TED values.
    let trees = swissprot_like(40, 33);
    let queries = swissprot_like(8, 34);
    let tau = 2;
    for verify in all_verify_configs() {
        let config = PartSjConfig {
            verify,
            ..Default::default()
        };
        let index = SearchIndex::build(&trees, tau, config);
        let mut engine = VerifyEngine::new(tau, &config);
        for query in &queries {
            let expected: Vec<(TreeIdx, u32)> = trees
                .iter()
                .enumerate()
                .filter_map(|(i, t)| {
                    let d = ted(t, query);
                    (d <= tau).then_some((i as TreeIdx, d))
                })
                .collect();
            assert_eq!(
                index.query_with_engine(query, &mut engine),
                expected,
                "verify = {verify:?}"
            );
        }
    }
}
