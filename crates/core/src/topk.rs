//! Top-k / threshold-free similarity join: the k closest tree pairs,
//! no τ required up front.
//!
//! The classic PartSJ join answers "all pairs within τ" — but picking τ
//! is exactly the part users get wrong on an unfamiliar corpus. This
//! module inverts the contract: ask for the **k most similar pairs**
//! and let the engine derive its own threshold, in the spirit of Xu &
//! Lu's adaptive tightening — as results accumulate, the constraint the
//! remaining candidates must beat gets stricter.
//!
//! ## How the threshold adapts
//!
//! A pass runs Algorithm 1 at a fixed partition ceiling `τ_c` with a
//! bounded max-heap of the best k `(distance, i, j)` keys seen so far.
//! Once the heap is full, its worst key's distance becomes the
//! **effective τ**: it narrows the probed size window
//! `[|T| − τ_eff, |T|]` and is fed into [`VerifyEngine::check_exact`]
//! via [`VerifyEngine::set_tau`], so both candidate generation and
//! verification prune against the live k-th best distance. Shrinking
//! the probe threshold below the ceiling the index was partitioned at
//! is exactly the catalog's `τ_q ≤ τ_frozen` contract — the `2τ_c + 1`
//! partitioning over-covers, so the candidate set stays complete.
//!
//! If a pass at `τ_c` yields fewer than k pairs, the ceiling doubles
//! and the pass reruns — capped at `2·max|T|`, which bounds every TED
//! (delete all of one tree, insert all of the other), so termination
//! with *all* existing pairs is guaranteed when the collection has
//! fewer than k.
//!
//! ## Ordering and ties
//!
//! Results are the first k entries of the exhaustive join sorted by
//! `(distance, i, j)` with `i < j`: ties on distance break toward the
//! lexicographically smallest index pair, because the heap compares
//! full keys — a new pair evicts the current worst whenever its whole
//! `(d, i, j)` key is smaller, not just its distance. The property test
//! `topk_matches_exhaustive_join` pins this against brute force.

use crate::config::PartSjConfig;
use crate::index::{LayerId, MatchCache, SubgraphIndex};
use crate::partition::cuts_for;
use crate::probe::{probe_tree_nodes, resolve_layers, ProbeCounters, ProbeScratch, StampSink};
use crate::subgraph::build_subgraphs;
use crate::verify::{VerifyData, VerifyEngine};
use std::collections::BinaryHeap;
use std::time::Instant;
use tsj_ted::{JoinStats, TreeIdx};
use tsj_tree::{FxHashMap, Tree};

/// One result of a top-k join: an index pair and its **exact** distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TopKPair {
    /// Smaller tree index of the pair.
    pub i: TreeIdx,
    /// Larger tree index of the pair (`i < j` always).
    pub j: TreeIdx,
    /// Exact tree edit distance between the two trees.
    pub distance: u32,
}

/// The output of [`partsj_topk`]: the k closest pairs plus the
/// instrumentation of the final (deciding) pass.
#[derive(Debug, Clone)]
pub struct TopKOutcome {
    /// The k closest pairs, ascending by `(distance, i, j)`. Shorter
    /// than k only when the collection has fewer than k pairs in total.
    pub pairs: Vec<TopKPair>,
    /// Counters of the final escalation pass (earlier, too-tight passes
    /// are discarded along with their stats).
    pub stats: JoinStats,
    /// Escalation passes run (1 when the initial ceiling sufficed).
    pub passes: u32,
    /// The partition ceiling `τ_c` of the final pass.
    pub final_tau: u32,
}

/// The k most similar pairs of `trees` under the default configuration.
/// See the [module docs](crate::topk) for semantics and ordering.
pub fn partsj_topk(trees: &[Tree], k: usize) -> TopKOutcome {
    partsj_topk_with(trees, k, &PartSjConfig::default())
}

/// The k most similar pairs of `trees` with an explicit configuration
/// (window policy, partitioning scheme, filter chain and adaptivity all
/// apply; the verify chain runs in [`VerifyEngine::check_exact`] mode
/// so every reported distance is exact).
pub fn partsj_topk_with(trees: &[Tree], k: usize, config: &PartSjConfig) -> TopKOutcome {
    let n = trees.len();
    let total_pairs = n.saturating_sub(1) * n / 2;
    let want = k.min(total_pairs);
    if want == 0 {
        return TopKOutcome {
            pairs: Vec::new(),
            stats: JoinStats::default(),
            passes: 0,
            final_tau: 0,
        };
    }

    // Shared preprocessing — none of it depends on the pass ceiling.
    // LC-RS forms and postorder numbers are rebuilt in place per probing
    // tree through one scratch shared across escalation passes.
    let data: Vec<VerifyData> = VerifyData::batch_for_config(trees, &config.verify);
    let mut probe_scratch = ProbeScratch::new();
    let mut order: Vec<TreeIdx> = (0..n as TreeIdx).collect();
    order.sort_by_key(|&i| (trees[i as usize].len(), i));

    // Every TED is at most |a| + |b| (delete one tree, insert the
    // other), so a ceiling of 2·max|T| finds every existing pair.
    let max_size = trees.iter().map(Tree::len).max().unwrap_or(0) as u32;
    let cap = (2 * max_size).max(1);

    let mut tau_c = 1u32;
    let mut passes = 0u32;
    loop {
        passes += 1;
        let (pairs, stats) = topk_pass(
            trees,
            &data,
            &order,
            want,
            tau_c,
            config,
            &mut probe_scratch,
        );
        if pairs.len() >= want || tau_c >= cap {
            return TopKOutcome {
                pairs,
                stats,
                passes,
                final_tau: tau_c,
            };
        }
        tau_c = tau_c.saturating_mul(2).min(cap);
    }
}

/// One Algorithm-1 pass at partition ceiling `tau_c`, keeping the best
/// `want` pairs in a bounded max-heap whose worst key drives the
/// effective probe/verify threshold.
#[allow(clippy::too_many_arguments)] // one orchestration call site, all parts hoisted
fn topk_pass(
    trees: &[Tree],
    data: &[VerifyData],
    order: &[TreeIdx],
    want: usize,
    tau_c: u32,
    config: &PartSjConfig,
    probe_scratch: &mut ProbeScratch,
) -> (Vec<TopKPair>, JoinStats) {
    let delta = 2 * tau_c as usize + 1;
    let mut stats = JoinStats::default();

    let mut index = SubgraphIndex::new(tau_c, config.window);
    let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
    let mut stamp: Vec<TreeIdx> = vec![TreeIdx::MAX; trees.len()];
    let mut verify = VerifyEngine::new(tau_c, config);
    // Max-heap over full `(distance, i, j)` keys: `peek` is the pair to
    // beat, and comparing whole keys makes tie handling (same distance,
    // smaller indices win) automatic.
    let mut heap: BinaryHeap<(u32, TreeIdx, TreeIdx)> = BinaryHeap::with_capacity(want + 1);
    let mut candidates: Vec<TreeIdx> = Vec::new();
    let mut layer_window: Vec<LayerId> = Vec::new();
    let mut match_cache = MatchCache::new();
    let mut counters = ProbeCounters::default();

    for &i in order {
        let (binary, posts) = probe_scratch.prepare(&trees[i as usize]);
        let size_i = binary.len() as u32;
        // The live threshold: once the heap is full, only pairs beating
        // its worst distance matter.
        let tau_eff = match heap.peek() {
            Some(&(worst, _, _)) if heap.len() == want => worst,
            _ => tau_c,
        };
        let lo = size_i.saturating_sub(tau_eff).max(1);

        let cand_start = Instant::now();
        candidates.clear();
        for m in lo..=size_i {
            if let Some(list) = small_by_size.get(&m) {
                for &j in list {
                    if stamp[j as usize] != i {
                        stamp[j as usize] = i;
                        candidates.push(j);
                    }
                }
            }
        }
        // The index was partitioned at τ_c ≥ τ_eff, so probing the
        // narrowed size window stays complete (the catalog's
        // `τ_q ≤ τ_frozen` argument).
        resolve_layers(&index, lo, size_i, &mut layer_window);
        let mut sink = StampSink {
            stamp: &mut stamp,
            marker: i,
            candidates: &mut candidates,
        };
        probe_tree_nodes(
            &index,
            &layer_window,
            binary,
            posts,
            size_i,
            config.matching,
            &mut match_cache,
            &mut counters,
            &mut sink,
        );
        stats.candidates += candidates.len() as u64;
        stats.pairs_examined += candidates.len() as u64;
        stats.candidate_time += cand_start.elapsed();

        let verify_start = Instant::now();
        for &j in &candidates {
            // Re-read the worst key per candidate: the heap may have
            // tightened while this very list was being verified.
            let tau_now = match heap.peek() {
                Some(&(worst, _, _)) if heap.len() == want => worst,
                _ => tau_c,
            };
            verify.set_tau(tau_now);
            if let Some(d) = verify.check_exact(&data[i as usize], &data[j as usize]) {
                let key = (d, i.min(j), i.max(j));
                if heap.len() < want {
                    heap.push(key);
                } else if key < *heap.peek().expect("heap is full") {
                    heap.pop();
                    heap.push(key);
                }
            }
        }
        stats.verify_time += verify_start.elapsed();

        let insert_start = Instant::now();
        if (size_i as usize) < delta {
            small_by_size.entry(size_i).or_default().push(i);
        } else {
            let cuts = cuts_for(binary, delta, config.partitioning, u64::from(i));
            let subgraphs = build_subgraphs(binary, posts, &cuts, i);
            index.insert_tree(size_i, subgraphs);
        }
        stats.candidate_time += insert_start.elapsed();
    }

    verify.fold_into(&mut stats);
    let mut keys = heap.into_vec();
    keys.sort_unstable();
    stats.results = keys.len() as u64;
    let pairs = keys
        .into_iter()
        .map(|(distance, i, j)| TopKPair { i, j, distance })
        .collect();
    (pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_ted::ted;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(specs: &[&str]) -> Vec<Tree> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect()
    }

    /// Brute-force oracle: every pair, sorted by `(distance, i, j)`.
    fn exhaustive(trees: &[Tree]) -> Vec<TopKPair> {
        let mut all = Vec::new();
        for i in 0..trees.len() {
            for j in (i + 1)..trees.len() {
                all.push(TopKPair {
                    i: i as TreeIdx,
                    j: j as TreeIdx,
                    distance: ted(&trees[i], &trees[j]),
                });
            }
        }
        all.sort_by_key(|p| (p.distance, p.i, p.j));
        all
    }

    #[test]
    fn topk_matches_exhaustive_prefix() {
        let trees = collection(&[
            "{a{b}{c}{d}}",
            "{a{b}{c}{e}}",
            "{a{b}{c}}",
            "{z{y}{x}{w}{v}{u}}",
            "{a{b}{c}{d}}",
        ]);
        let oracle = exhaustive(&trees);
        for k in 0..=oracle.len() + 2 {
            let outcome = partsj_topk(&trees, k);
            let want = k.min(oracle.len());
            assert_eq!(outcome.pairs, oracle[..want], "k = {k}");
        }
    }

    #[test]
    fn ties_break_toward_smaller_index_pairs() {
        // Three identical trees: pairs (0,1), (0,2), (1,2) all at
        // distance 0 — k = 2 must keep the lexicographically smallest.
        let trees = collection(&["{a{b}{c}}", "{a{b}{c}}", "{a{b}{c}}", "{q{r{s{t}}}}"]);
        let outcome = partsj_topk(&trees, 2);
        assert_eq!(
            outcome.pairs,
            vec![
                TopKPair {
                    i: 0,
                    j: 1,
                    distance: 0
                },
                TopKPair {
                    i: 0,
                    j: 2,
                    distance: 0
                },
            ]
        );
    }

    #[test]
    fn escalation_finds_distant_pairs() {
        // No pair within τ = 1: the ceiling must escalate until the two
        // closest (still far apart) trees surface.
        let trees = collection(&["{a{b{c{d{e}}}}}", "{v{w}{x}{y}{z}}", "{m}"]);
        let oracle = exhaustive(&trees);
        let outcome = partsj_topk(&trees, 1);
        assert_eq!(outcome.pairs, oracle[..1]);
        assert!(outcome.passes > 1, "τ must have escalated");
    }

    #[test]
    fn k_beyond_population_returns_everything() {
        let trees = collection(&["{a{b}}", "{a{c}}", "{x{y{z}}}"]);
        let outcome = partsj_topk(&trees, 100);
        assert_eq!(outcome.pairs, exhaustive(&trees));
        assert_eq!(outcome.stats.results, 3);
    }

    #[test]
    fn degenerate_inputs_are_empty() {
        assert!(partsj_topk(&[], 5).pairs.is_empty());
        let one = collection(&["{a}"]);
        assert!(partsj_topk(&one, 5).pairs.is_empty());
        let trees = collection(&["{a{b}}", "{a{c}}"]);
        let outcome = partsj_topk(&trees, 0);
        assert!(outcome.pairs.is_empty());
        assert_eq!(outcome.passes, 0);
    }
}
