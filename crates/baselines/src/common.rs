//! Shared join plumbing: size-ordered nested loop with a sliding size
//! window, split-phase timing, and exact-TED verification.
//!
//! Both baselines (and the brute-force ground truth) follow the same outer
//! structure the paper describes in §1/§2: iterate tree pairs in a nested
//! loop, prune with the size filter (`||T1|−|T2|| ≤ τ`, footnote 5), apply
//! a method-specific filter, and verify surviving candidates with exact
//! TED. Sorting by size turns the size filter into a sliding window, so
//! only `O(window)` pairs are touched per probe tree.

use std::time::Instant;
use tsj_ted::{JoinOutcome, JoinStats, PreparedTree, TedBuildScratch, TedEngine, TreeIdx};
use tsj_tree::Tree;

/// Probe order and sizes for a size-sorted self-join.
#[derive(Debug)]
pub struct SizeOrder {
    /// Tree indices sorted by ascending tree size (ties by index).
    pub order: Vec<TreeIdx>,
    /// `sizes[i]` = size of tree `i` (original indexing).
    pub sizes: Vec<u32>,
}

impl SizeOrder {
    /// Computes the ascending size order of `trees`.
    pub fn new(trees: &[Tree]) -> SizeOrder {
        let sizes: Vec<u32> = trees.iter().map(|t| t.len() as u32).collect();
        let mut order: Vec<TreeIdx> = (0..trees.len() as TreeIdx).collect();
        order.sort_by_key(|&i| (sizes[i as usize], i));
        SizeOrder { order, sizes }
    }
}

/// Runs a filter-and-verify self-join.
///
/// `prepare` is called once (timed as candidate generation) to build the
/// method's per-tree structures `T`; `filter` then decides, for a pair that
/// already passed the size window, whether it becomes a candidate.
/// Candidates are verified with exact TED using the engine's dynamic
/// strategy.
pub fn filter_verify_join<T, P, F>(
    trees: &[Tree],
    tau: u32,
    prepare: P,
    mut filter: F,
) -> JoinOutcome
where
    P: FnOnce() -> T,
    F: FnMut(&T, usize, usize) -> bool,
{
    let mut stats = JoinStats::default();

    let setup_start = Instant::now();
    let prep_data = prepare();
    let ordering = SizeOrder::new(trees);
    // One set of build temporaries across the whole collection.
    let mut build = TedBuildScratch::default();
    let prepared: Vec<PreparedTree> = trees
        .iter()
        .map(|t| PreparedTree::new_with(t, &mut build))
        .collect();
    stats.candidate_time += setup_start.elapsed();

    let mut engine = TedEngine::unit();
    let mut pairs = Vec::new();
    let mut candidates: Vec<TreeIdx> = Vec::new();
    let mut window_start = 0usize;

    for (pos, &probe) in ordering.order.iter().enumerate() {
        let probe_size = ordering.sizes[probe as usize];

        let cand_start = Instant::now();
        candidates.clear();
        while ordering.sizes[ordering.order[window_start] as usize] + tau < probe_size {
            window_start += 1;
        }
        for &other in &ordering.order[window_start..pos] {
            stats.pairs_examined += 1;
            if filter(&prep_data, probe as usize, other as usize) {
                candidates.push(other);
            }
        }
        stats.candidates += candidates.len() as u64;
        stats.candidate_time += cand_start.elapsed();

        let verify_start = Instant::now();
        for &other in &candidates {
            let d = engine.distance(&prepared[probe as usize], &prepared[other as usize]);
            if d <= tau {
                pairs.push((other, probe));
            }
        }
        stats.verify_time += verify_start.elapsed();
    }

    stats.ted_calls = engine.computations();
    JoinOutcome::new(pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(specs: &[&str]) -> Vec<Tree> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect()
    }

    #[test]
    fn size_order_sorts_ascending() {
        let trees = collection(&["{a{b}{c}}", "{a}", "{a{b}}"]);
        let ordering = SizeOrder::new(&trees);
        assert_eq!(ordering.order, vec![1, 2, 0]);
        assert_eq!(ordering.sizes, vec![3, 1, 2]);
    }

    #[test]
    fn pass_through_filter_finds_all_close_pairs() {
        let trees = collection(&["{a{b}}", "{a{b}}", "{a{c}}", "{z{y}{x}{w}{v}}"]);
        let outcome = filter_verify_join(&trees, 1, || (), |_, _, _| true);
        assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]);
        // The size window must exclude the 5-node tree vs 2-node trees.
        assert_eq!(outcome.stats.pairs_examined, 3);
    }

    #[test]
    fn rejecting_filter_yields_nothing() {
        let trees = collection(&["{a}", "{a}", "{a}"]);
        let outcome = filter_verify_join(&trees, 2, || (), |_, _, _| false);
        assert!(outcome.pairs.is_empty());
        assert_eq!(outcome.stats.candidates, 0);
        assert_eq!(outcome.stats.ted_calls, 0);
        assert_eq!(outcome.stats.pairs_examined, 3);
    }

    #[test]
    fn window_respects_tau() {
        // Sizes 1, 3, 5: with tau=1 no pair is examined; tau=2 adjacent.
        let trees = collection(&["{a}", "{a{b}{c}}", "{a{b}{c}{d}{e}}"]);
        let t1 = filter_verify_join(&trees, 1, || (), |_, _, _| true);
        assert_eq!(t1.stats.pairs_examined, 0);
        let t2 = filter_verify_join(&trees, 2, || (), |_, _, _| true);
        assert_eq!(t2.stats.pairs_examined, 2);
    }
}
