//! The cluster join result: pairs, degradation report, telemetry.
//!
//! The degradation contract: a [`crate::Cluster::join`] either serves the
//! complete result (bit-identical to the single-node catalog join), or
//! returns the pairs it could still prove **plus** a typed [`Degraded`]
//! report naming exactly which `(probe, size class)` combinations went
//! unserved — never a silently incomplete answer, never a panic. Served
//! pairs are always correct (verification ran); degradation can only
//! *omit* pairs whose left tree lives in an unserved size class.
//!
//! [`Telemetry`] carries both join-level totals and a [`RequestStats`]
//! row per planned shard request (attempts, retries, backoff), so retry
//! pressure is visible without injecting a virtual clock. All of it is
//! deterministic under a seeded fault plan, and per-node sums from
//! [`crate::Cluster::metrics`] reconcile exactly with these totals.

use tsj_ted::{JoinOutcome, TreeIdx};

/// Exactly what a degraded join failed to cover.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Degraded {
    /// `(probe index, size class)` combinations that went unserved —
    /// sorted, deduplicated. A pair `(j, c)` means: catalog trees of
    /// `c` nodes were never probed for probe `j`, so result pairs whose
    /// left tree has `c` nodes may be missing for that probe.
    pub unserved: Vec<(TreeIdx, u32)>,
    /// Shards with no alive replica when the join finished — the
    /// unrecoverable losses behind the unserved classes. Empty when the
    /// degradation was transient (deadline exhaustion on a live shard).
    pub lost_shards: Vec<u32>,
    /// Serve attempts spent on the requests that still went unserved.
    pub attempts: u64,
    /// Retries spent on the requests that still went unserved.
    pub retries: u64,
    /// Backoff slept for the requests that still went unserved, in
    /// clock milliseconds.
    pub backoff_ms: u64,
}

impl Degraded {
    /// Distinct probes with at least one unserved size class.
    pub fn affected_probes(&self) -> usize {
        let mut probes: Vec<TreeIdx> = self.unserved.iter().map(|&(p, _)| p).collect();
        probes.dedup();
        probes.len()
    }

    /// Distinct size classes that went unserved for any probe.
    pub fn unserved_classes(&self) -> Vec<u32> {
        let mut classes: Vec<u32> = self.unserved.iter().map(|&(_, c)| c).collect();
        classes.sort_unstable();
        classes.dedup();
        classes
    }
}

/// What one planned shard request cost the router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// The probing tree's index in the join's probe batch.
    pub probe: TreeIdx,
    /// The shard the request was planned against.
    pub shard: u32,
    /// Serve attempts consulted for this request (first try + retries;
    /// 0 when no replica was alive at planning time and none recovered).
    pub attempts: u32,
    /// Attempts after the first.
    pub retries: u32,
    /// Backoff slept before this request's retries, in clock ms.
    pub backoff_ms: u64,
    /// Deadline-accounted time charged to this request (absorbed delays,
    /// request timeouts and backoffs), in clock ms.
    pub spent_ms: u64,
    /// Whether the request ultimately produced a response.
    pub served: bool,
}

/// What the router did to produce a result.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Telemetry {
    /// Shard requests planned (probes × owning shards).
    pub requests: u64,
    /// Requests that ultimately produced a response.
    pub served: u64,
    /// Serve attempts issued across all requests (first tries and
    /// retries, successful or not).
    pub attempts: u64,
    /// Faults injected across all attempts.
    pub faults: u64,
    /// Retry attempts issued after a failed first attempt.
    pub retries: u64,
    /// Failovers: attempts redirected because a node was (or went) down.
    pub failovers: u64,
    /// Total backoff slept, in clock milliseconds.
    pub backoff_ms: u64,
    /// Total injected delay absorbed, in clock milliseconds.
    pub delay_ms: u64,
    /// One row per planned shard request, in planning order.
    pub per_request: Vec<RequestStats>,
}

impl Telemetry {
    /// The request rows that went unserved.
    pub fn unserved_requests(&self) -> impl Iterator<Item = &RequestStats> {
        self.per_request.iter().filter(|r| !r.served)
    }

    /// The most-retried request, if any retried at all.
    pub fn hottest_request(&self) -> Option<&RequestStats> {
        self.per_request
            .iter()
            .filter(|r| r.retries > 0)
            .max_by_key(|r| (r.retries, r.backoff_ms))
    }
}

/// The result of a cluster join.
#[derive(Debug, Clone)]
pub struct ClusterJoin {
    /// Union of the per-shard responses — pairs `(catalog tree, probe)`
    /// normalized exactly like `Catalog::join`'s, stats folded per shard
    /// request (stage counts merged by name).
    pub outcome: JoinOutcome,
    /// `None` when every planned request was served; otherwise the exact
    /// coverage gap.
    pub degraded: Option<Degraded>,
    /// Router work counters for this join.
    pub telemetry: Telemetry,
}

impl ClusterJoin {
    /// Whether every planned shard request was served.
    pub fn is_complete(&self) -> bool {
        self.degraded.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degraded_summaries() {
        let degraded = Degraded {
            unserved: vec![(0, 5), (0, 7), (2, 5)],
            lost_shards: vec![1],
            ..Degraded::default()
        };
        assert_eq!(degraded.affected_probes(), 2);
        assert_eq!(degraded.unserved_classes(), vec![5, 7]);
    }

    #[test]
    fn telemetry_surfaces_retry_pressure() {
        let row = |probe, retries, backoff_ms, served| RequestStats {
            probe,
            shard: 0,
            attempts: retries + 1,
            retries,
            backoff_ms,
            spent_ms: backoff_ms,
            served,
        };
        let telemetry = Telemetry {
            requests: 3,
            served: 2,
            per_request: vec![
                row(0, 0, 0, true),
                row(1, 2, 30, true),
                row(2, 3, 70, false),
            ],
            ..Telemetry::default()
        };
        assert_eq!(telemetry.unserved_requests().count(), 1);
        assert_eq!(telemetry.hottest_request().unwrap().probe, 2);
    }
}
