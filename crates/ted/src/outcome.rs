//! Shared result and instrumentation types for similarity joins.
//!
//! The paper's evaluation reports, for every join method, (i) the result
//! pairs, (ii) the number of candidate pairs that reached exact TED
//! verification (Figures 11/13), and (iii) runtime split into *candidate
//! generation* and *TED computation* (the stacked bars of Figures 10/12/
//! 14). All join implementations in this workspace — STR, SET, brute force
//! and PartSJ — return the same [`JoinOutcome`] so the harness and the
//! equivalence tests can treat them uniformly.

use std::time::Duration;

/// Index of a tree within the joined collection.
pub type TreeIdx = u32;

/// One verification-chain stage's counter: how many candidate pairs were
/// *resolved* at this stage — rejected by a lower bound, or admitted by an
/// upper bound — and therefore never reached the exact TED computation.
///
/// The stage name comes from the filter implementation (e.g. `"size"`,
/// `"traversal-sed"`); this crate only defines the counter shape so every
/// join entry point can report the same breakdown in [`JoinStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageCount {
    /// Stage name, as reported by the filter implementation.
    pub stage: &'static str,
    /// Candidate pairs resolved at this stage.
    pub count: u64,
}

/// Counters and timings collected while evaluating a join.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinStats {
    /// Pairs that passed the size filter and were examined at all.
    pub pairs_examined: u64,
    /// Candidate pairs handed to exact TED verification (the series
    /// plotted in Figures 11 and 13).
    pub candidates: u64,
    /// Result pairs (`REL` in the figures).
    pub results: u64,
    /// Wall time spent generating candidates (filters, index probes).
    pub candidate_time: Duration,
    /// Wall time spent on exact TED verification.
    pub verify_time: Duration,
    /// Exact TED computations performed (≤ `candidates`; verifier-side
    /// cheap filters can skip some).
    pub ted_calls: u64,
    /// Candidates rejected by cheap pre-verification lower bounds (size,
    /// label histogram, traversal-string) before any exact TED ran; such
    /// skips never remove a true result because every bound is a TED
    /// lower bound. Equals the sum of the lower-bound entries of
    /// [`JoinStats::stage_counts`].
    pub prefilter_skips: u64,
    /// Candidates *admitted* by a cheap upper bound (TED ≤ certificate ≤
    /// τ) without running the exact TED DP; such accepts never add a
    /// false result because every certificate is a valid edit-script
    /// cost.
    pub early_accepts: u64,
    /// Per-stage breakdown of where candidates were resolved before exact
    /// TED, in chain order (cheapest first). Empty when the entry point
    /// ran without a verification chain.
    pub stage_counts: Vec<StageCount>,
}

impl JoinStats {
    /// Total measured time (candidate generation + verification).
    pub fn total_time(&self) -> Duration {
        self.candidate_time + self.verify_time
    }

    /// Folds a partial result's counters into `self` — the gather half of
    /// a scatter/gather join, where each partition reports its own
    /// `JoinStats` and the router sums them. Work counters and phase
    /// timings add; `stage_counts` merge *by stage name* (partitions may
    /// report stages in different orders or omit stages that resolved
    /// nothing); `results` is left untouched because result pairs are
    /// deduplicated by the caller after the union, not summable here.
    pub fn merge_partial(&mut self, part: &JoinStats) {
        self.pairs_examined += part.pairs_examined;
        self.candidates += part.candidates;
        self.candidate_time += part.candidate_time;
        self.verify_time += part.verify_time;
        self.ted_calls += part.ted_calls;
        self.prefilter_skips += part.prefilter_skips;
        self.early_accepts += part.early_accepts;
        for sc in &part.stage_counts {
            match self.stage_counts.iter_mut().find(|c| c.stage == sc.stage) {
                Some(mine) => mine.count += sc.count,
                None => self.stage_counts.push(sc.clone()),
            }
        }
    }
}

/// The output of a similarity self-join.
#[derive(Debug, Clone)]
pub struct JoinOutcome {
    /// Result pairs as `(i, j)` indices into the input collection with
    /// `i < j`, sorted lexicographically.
    pub pairs: Vec<(TreeIdx, TreeIdx)>,
    /// Instrumentation.
    pub stats: JoinStats,
}

impl JoinOutcome {
    /// Builds a self-join outcome, normalizing each pair to `(min, max)`
    /// and sorting, so join implementations can be compared with
    /// `assert_eq!`.
    pub fn new(mut pairs: Vec<(TreeIdx, TreeIdx)>, mut stats: JoinStats) -> JoinOutcome {
        for pair in &mut pairs {
            if pair.0 > pair.1 {
                *pair = (pair.1, pair.0);
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        stats.results = pairs.len() as u64;
        JoinOutcome { pairs, stats }
    }

    /// Builds a bipartite (R×S) outcome: pairs are `(left index, right
    /// index)` in *different* index spaces, so components are never
    /// swapped — only sorted and deduplicated.
    pub fn new_bipartite(mut pairs: Vec<(TreeIdx, TreeIdx)>, mut stats: JoinStats) -> JoinOutcome {
        pairs.sort_unstable();
        pairs.dedup();
        stats.results = pairs.len() as u64;
        JoinOutcome { pairs, stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_normalizes_pairs() {
        let outcome = JoinOutcome::new(vec![(3, 1), (0, 2), (1, 3), (2, 0)], JoinStats::default());
        assert_eq!(outcome.pairs, vec![(0, 2), (1, 3)]);
        assert_eq!(outcome.stats.results, 2);
    }

    #[test]
    fn merge_partial_sums_counters_and_folds_stages_by_name() {
        let mut total = JoinStats {
            pairs_examined: 10,
            candidates: 4,
            results: 2,
            ted_calls: 3,
            prefilter_skips: 1,
            early_accepts: 0,
            candidate_time: Duration::from_millis(5),
            verify_time: Duration::from_millis(7),
            stage_counts: vec![
                StageCount {
                    stage: "size",
                    count: 1,
                },
                StageCount {
                    stage: "traversal-sed",
                    count: 2,
                },
            ],
        };
        let part = JoinStats {
            pairs_examined: 6,
            candidates: 3,
            results: 99, // must not leak into the merged total
            ted_calls: 2,
            prefilter_skips: 2,
            early_accepts: 1,
            candidate_time: Duration::from_millis(1),
            verify_time: Duration::from_millis(2),
            stage_counts: vec![
                StageCount {
                    stage: "traversal-sed",
                    count: 5,
                },
                StageCount {
                    stage: "label-hist",
                    count: 4,
                },
            ],
        };
        total.merge_partial(&part);
        assert_eq!(total.pairs_examined, 16);
        assert_eq!(total.candidates, 7);
        assert_eq!(total.results, 2);
        assert_eq!(total.ted_calls, 5);
        assert_eq!(total.prefilter_skips, 3);
        assert_eq!(total.early_accepts, 1);
        assert_eq!(total.candidate_time, Duration::from_millis(6));
        assert_eq!(total.verify_time, Duration::from_millis(9));
        assert_eq!(
            total.stage_counts,
            vec![
                StageCount {
                    stage: "size",
                    count: 1,
                },
                StageCount {
                    stage: "traversal-sed",
                    count: 7,
                },
                StageCount {
                    stage: "label-hist",
                    count: 4,
                },
            ]
        );
    }

    #[test]
    fn total_time_adds_phases() {
        let stats = JoinStats {
            candidate_time: Duration::from_millis(30),
            verify_time: Duration::from_millis(70),
            ..Default::default()
        };
        assert_eq!(stats.total_time(), Duration::from_millis(100));
    }
}
