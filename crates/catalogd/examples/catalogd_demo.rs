//! End-to-end `catalogd` walkthrough with real server processes:
//! freeze a snapshot, boot a 2-node loopback cluster (replication 1 so
//! a crash is *visible*), join through `ClusterClient`, SIGKILL one
//! node to show the typed `Degraded` report, then restart it and show
//! the join come back `Complete` and identical.
//!
//! This is the runnable companion to `docs/OPERATIONS.md` (the runbook
//! for each step) and `docs/ARCHITECTURE.md` (why the answer survives
//! a dead node). Run with:
//!
//! ```bash
//! cargo build --release -p tsj-catalogd
//! cargo run --release -p tsj-catalogd --example catalogd_demo
//! ```
//!
//! (The demo spawns the `catalogd` binary from the same build profile,
//! so build the package first as above.)

use partsj::PartSjConfig;
use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use tsj_catalog::Catalog;
use tsj_catalogd::{interner_for, ClientConfig, ClusterClient};
use tsj_shard::ShardConfig;
use tsj_tree::{LabelInterner, Tree};

const NODES: usize = 2;
const TAU: u32 = 2;

fn main() {
    let binary = catalogd_binary();
    let dir = std::env::temp_dir().join(format!("tsj-catalogd-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let result = run(&binary, &dir);
    std::fs::remove_dir_all(&dir).ok();
    if let Err(message) = result {
        eprintln!("catalogd_demo: {message}");
        std::process::exit(1);
    }
}

fn run(binary: &Path, dir: &Path) -> Result<(), String> {
    // ── 1. Freeze a snapshot (OPERATIONS.md §1) ─────────────────────
    let trees = tsj_datagen::swissprot_like(120, 2015);
    let labels = interner_for(&trees);
    let config = PartSjConfig::default();
    let catalog = Catalog::freeze(
        trees.clone(),
        labels,
        TAU,
        &config,
        &ShardConfig::with_shards(4),
    );
    let snapshot = catalog.to_bytes();
    let snapshot_path = dir.join("demo.tsjcat");
    std::fs::write(&snapshot_path, &snapshot).map_err(|e| format!("write snapshot: {e}"))?;
    println!(
        "[freeze] {} trees, tau {TAU}, 4 shards -> {} ({} bytes)",
        trees.len(),
        snapshot_path.display(),
        snapshot.len()
    );

    // Probes with real matches: fresh trees plus light edits of
    // catalog entries. The single-process reference join is what every
    // networked answer below must reproduce exactly.
    let (probes, probe_labels) = demo_probes(&trees);
    let reference = catalog
        .join(&probes, TAU, &config, &ShardConfig::default())
        .map_err(|e| format!("reference join: {e}"))?;
    println!(
        "[reference] single-process join: {} pairs from {} probes",
        reference.pairs.len(),
        probes.len()
    );

    // ── 2. Boot the cluster (OPERATIONS.md §2) ──────────────────────
    // Replication 1: every shard has exactly one holder, so killing a
    // node *loses* shards — which is the point of the demo. Use R=2 in
    // production for invisible single-node failover.
    let (mut child0, addr0) = spawn_node(binary, &snapshot_path, 0)?;
    let (mut child1, addr1) = spawn_node(binary, &snapshot_path, 1)?;
    println!("[serve] node 0 on {addr0}, node 1 on {addr1} (replication 1)");

    // ── 3. Route traffic (OPERATIONS.md §3) ─────────────────────────
    let mut client = ClusterClient::connect(&[addr0, addr1], ClientConfig::default())
        .map_err(|e| format!("connect: {e}"))?;
    let healthy = client
        .join(&probes, &probe_labels, TAU)
        .map_err(|e| format!("healthy join: {e}"))?;
    expect(healthy.is_complete(), "healthy join should be Complete")?;
    expect(
        healthy.outcome.pairs == reference.pairs,
        "TCP answer must be bit-identical to the reference",
    )?;
    println!(
        "[join] Complete over TCP: {} pairs, {} shard requests — identical to the reference",
        healthy.outcome.pairs.len(),
        healthy.telemetry.requests
    );

    // ── 4. Crash a node (OPERATIONS.md §5) ──────────────────────────
    child0.kill().map_err(|e| format!("kill node 0: {e}"))?;
    child0.wait().map_err(|e| format!("reap node 0: {e}"))?;
    println!("[crash] SIGKILL node 0 — no shutdown frame, no flush");

    let degraded = client
        .join(&probes, &probe_labels, TAU)
        .map_err(|e| format!("degraded join: {e}"))?;
    let report = degraded
        .degraded
        .as_ref()
        .ok_or("R=1 with a dead node must degrade")?;
    println!(
        "[degraded] join still returned: {} pairs proven; typed report: \
         lost shards {:?}, {} probes affected, {} attempts / {} retries spent",
        degraded.outcome.pairs.len(),
        report.lost_shards,
        report.affected_probes(),
        report.attempts,
        report.retries
    );
    // The degradation contract: served pairs are always true pairs —
    // degradation only ever omits.
    for pair in &degraded.outcome.pairs {
        expect(
            reference.pairs.contains(pair),
            "degraded join invented a pair",
        )?;
    }
    println!("[degraded] every served pair checks out against the reference (omission only)");

    // ── 5. Recover (OPERATIONS.md §6) ───────────────────────────────
    // Restart is just "run the same command again" — the snapshot is
    // immutable. The restarted process gets a fresh port, so rebuild
    // the client over the new address list.
    let (mut restarted, new_addr0) = spawn_node(binary, &snapshot_path, 0)?;
    let mut client = ClusterClient::connect(&[new_addr0, addr1], ClientConfig::default())
        .map_err(|e| format!("reconnect: {e}"))?;
    let healed = client
        .join(&probes, &probe_labels, TAU)
        .map_err(|e| format!("healed join: {e}"))?;
    expect(healed.is_complete(), "healed join should be Complete")?;
    expect(
        healed.outcome.pairs == reference.pairs,
        "healed answer must match the reference again",
    )?;
    println!(
        "[recover] node 0 restarted on {new_addr0}: join Complete again, {} pairs, identical",
        healed.outcome.pairs.len()
    );

    // ── 6. Graceful shutdown, via the protocol ──────────────────────
    client
        .shutdown_node(0)
        .map_err(|e| format!("shutdown 0: {e}"))?;
    client
        .shutdown_node(1)
        .map_err(|e| format!("shutdown 1: {e}"))?;
    restarted
        .wait()
        .map_err(|e| format!("reap restarted: {e}"))?;
    child1.wait().map_err(|e| format!("reap node 1: {e}"))?;
    println!("[shutdown] both nodes acknowledged Shutdown and exited");
    println!("catalogd_demo: complete — see docs/OPERATIONS.md for the production runbook");
    Ok(())
}

/// Probes with guaranteed matches: fresh SwissProt-like trees plus one
/// lightly edited revision of every 9th catalog tree.
fn demo_probes(catalog_trees: &[Tree]) -> (Vec<Tree>, LabelInterner) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let mut probes = tsj_datagen::swissprot_like(10, 2016);
    for original in catalog_trees.iter().step_by(9).take(8) {
        let (revision, _) = tsj_datagen::random_edit_script(original, 1, &mut rng, 84);
        probes.push(revision);
    }
    let mut all = probes.clone();
    all.extend_from_slice(catalog_trees);
    let labels = interner_for(&all);
    (probes, labels)
}

/// Spawns one `catalogd serve` process on an ephemeral port and reads
/// the bound address off its startup banner.
fn spawn_node(binary: &Path, snapshot: &Path, node: usize) -> Result<(Child, SocketAddr), String> {
    let mut child = Command::new(binary)
        .args([
            "serve",
            "--snapshot",
            snapshot.to_str().expect("utf-8 temp path"),
            "--node",
            &node.to_string(),
            "--nodes",
            &NODES.to_string(),
            "--replication",
            "1",
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", binary.display()))?;
    let stdout = child.stdout.take().ok_or("no piped stdout")?;
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("read banner: {e}"))?;
    let addr = line
        .split("serving on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .ok_or_else(|| format!("unexpected banner {line:?}"))?
        .parse()
        .map_err(|e| format!("bad address in banner {line:?}: {e}"))?;
    Ok((child, addr))
}

/// The `catalogd` binary from the same build profile as this example:
/// `target/<profile>/examples/catalogd_demo` -> `target/<profile>/catalogd`.
fn catalogd_binary() -> PathBuf {
    let me = std::env::current_exe().expect("current_exe");
    let profile_dir = me
        .parent() // .../examples
        .and_then(Path::parent) // .../<profile>
        .expect("example lives under target/<profile>/examples");
    let binary = profile_dir.join("catalogd");
    if !binary.exists() {
        eprintln!(
            "catalogd_demo: {} not found — build the server binary first:\n  \
             cargo build {}-p tsj-catalogd",
            binary.display(),
            if profile_dir.ends_with("release") {
                "--release "
            } else {
                ""
            }
        );
        std::process::exit(1);
    }
    binary
}

fn expect(condition: bool, message: &str) -> Result<(), String> {
    if condition {
        Ok(())
    } else {
        Err(message.to_string())
    }
}
