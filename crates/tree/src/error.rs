//! Error types for parsing and tree editing.

use std::fmt;

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub position: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl ParseError {
    /// Creates a parse error at `position`.
    pub fn new(position: usize, message: impl Into<String>) -> ParseError {
        ParseError {
            position,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A rejected node edit operation (see [`crate::edit`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The referenced node id does not exist in the tree.
    UnknownNode,
    /// Attempted to delete the root node, which the paper's operation
    /// model (§2) does not allow.
    DeleteRoot,
    /// An insertion's child range `[start, start + count)` does not fall
    /// within the parent's child list.
    BadChildRange {
        /// First adopted child position.
        start: usize,
        /// Number of adopted children.
        count: usize,
        /// Actual number of children of the parent.
        available: usize,
    },
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownNode => write!(f, "edit references an unknown node"),
            EditError::DeleteRoot => write!(f, "the root node cannot be deleted"),
            EditError::BadChildRange {
                start,
                count,
                available,
            } => write!(
                f,
                "insertion adopts children [{start}, {}) but parent has {available}",
                start + count
            ),
        }
    }
}

impl std::error::Error for EditError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_displays_position() {
        let e = ParseError::new(17, "expected '{'");
        assert_eq!(e.to_string(), "parse error at byte 17: expected '{'");
    }

    #[test]
    fn edit_error_displays() {
        assert!(EditError::DeleteRoot.to_string().contains("root"));
        let e = EditError::BadChildRange {
            start: 2,
            count: 3,
            available: 4,
        };
        assert!(e.to_string().contains("[2, 5)"));
    }
}
