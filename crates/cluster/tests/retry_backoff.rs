//! Deterministic retry/backoff behavior, asserted to the millisecond on
//! an injectable [`VirtualClock`]: the router sleeps *exactly* the
//! jittered exponential schedule [`RetryPolicy::backoff_ms`] promises, a
//! probe's deadline cuts retries off precisely where the accounting says,
//! and injected delays are absorbed or converted to timeouts without ever
//! double-counting work.

use partsj::{window_of, PartSjConfig};
use std::sync::Arc;
use tsj_catalog::Catalog;
use tsj_cluster::{Clock, Cluster, ClusterConfig, FaultPlan, RetryPolicy, VirtualClock};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::ShardConfig;
use tsj_tree::{LabelInterner, Tree};

fn collection(n: usize, avg_size: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        seed,
    )
}

fn freeze(left: &[Tree], tau: u32, shards: usize) -> Catalog {
    Catalog::freeze(
        left.to_vec(),
        LabelInterner::new(),
        tau,
        &PartSjConfig::default(),
        &ShardConfig {
            shards,
            probe_threads: 1,
            verify_threads: 1,
            ..Default::default()
        },
    )
}

/// The shard requests `Cluster::join` plans for `probes` — replicated
/// here so the tests can compute expected schedules independently.
fn planned_requests(catalog: &Catalog, probes: &[Tree], tau: u32) -> Vec<(u32, u32)> {
    let mut requests = Vec::new();
    for (j, tree) in probes.iter().enumerate() {
        let (lo, hi) = window_of(tree.len() as u32, tau);
        let mut shards: Vec<u32> = (lo..=hi)
            .map(|c| catalog.index().shard_of_size(c) as u32)
            .collect();
        shards.sort_unstable();
        shards.dedup();
        requests.extend(shards.into_iter().map(|s| (j as u32, s)));
    }
    requests
}

/// Under a 100% transient-error storm every request exhausts its retries,
/// and the virtual clock must land on *exactly* the sum of the policy's
/// jittered backoffs — the schedule is a pure function of the seed and the
/// request coordinates.
#[test]
fn transient_storm_sleeps_the_exact_backoff_schedule() {
    let left = collection(16, 14, 21);
    let right = collection(10, 14, 22);
    let tau = 1;
    let catalog = freeze(&left, tau, 2);
    let plan = FaultPlan {
        seed: 0x5EED,
        transient_permille: 1000,
        ..FaultPlan::none()
    };
    let mut cfg = ClusterConfig::new(2, 2);
    cfg.faults = plan.clone();
    let policy = cfg.retry.clone();
    let clock = Arc::new(VirtualClock::new());
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &cfg)
        .unwrap()
        .with_clock(clock.clone());
    let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();

    let requests = planned_requests(&catalog, &right, tau);
    let mut expected_ms = 0u64;
    for &(probe, shard) in &requests {
        for retry in 1..policy.max_attempts {
            let backoff = policy.backoff_ms(plan.seed, probe, shard, retry);
            let (lo, hi) = policy.backoff_bounds_ms(retry);
            assert!(
                (lo..=hi).contains(&backoff),
                "retry {retry}: {backoff} outside [{lo}, {hi}]"
            );
            expected_ms += backoff;
        }
    }
    assert!(expected_ms > 0);
    assert_eq!(clock.now_ms(), expected_ms, "clock is exactly the schedule");
    assert_eq!(served.telemetry.backoff_ms, expected_ms);
    let n = requests.len() as u64;
    assert_eq!(served.telemetry.requests, n);
    assert_eq!(served.telemetry.served, 0);
    assert_eq!(
        served.telemetry.retries,
        n * u64::from(policy.max_attempts - 1)
    );
    assert_eq!(served.telemetry.faults, n * u64::from(policy.max_attempts));
    assert!(!served.is_complete());
    assert!(served.outcome.pairs.is_empty());
}

/// The per-probe deadline cuts the retry sequence exactly where the
/// accounting says: a 50 ms timeout plus a 40 ms backoff fits a 100 ms
/// deadline once, and the next timeout exhausts it.
#[test]
fn probe_deadline_cuts_retries_off_exactly() {
    let left = collection(16, 14, 21);
    let probe = collection(1, 14, 23);
    let tau = 1;
    // One shard: the single probe plans exactly one request.
    let catalog = freeze(&left, tau, 1);
    let mut cfg = ClusterConfig::new(2, 2);
    cfg.faults = FaultPlan {
        seed: 7,
        timeout_permille: 1000,
        ..FaultPlan::none()
    };
    cfg.retry = RetryPolicy {
        max_attempts: 4,
        base_backoff_ms: 40,
        multiplier: 2.0,
        jitter: 0.0,
        request_timeout_ms: 50,
        probe_deadline_ms: 100,
    };
    let clock = Arc::new(VirtualClock::new());
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &cfg)
        .unwrap()
        .with_clock(clock.clone());
    let served = cluster.join(&probe, tau, &PartSjConfig::default()).unwrap();

    // Scatter: timeout (spent 50). Retry 1: backoff 40 (spent 90 ≤ 100),
    // then another timeout (spent 140 ≥ 100) — done. Retry 2 never
    // happens: its backoff alone would breach the deadline.
    assert_eq!(served.telemetry.requests, 1);
    assert_eq!(served.telemetry.retries, 1);
    assert_eq!(served.telemetry.faults, 2);
    assert_eq!(served.telemetry.backoff_ms, 40);
    assert_eq!(clock.now_ms(), 40, "only the one backoff was slept");
    assert!(!served.is_complete());
}

/// Delays within the request timeout are absorbed: the join completes
/// with the exact fault-free result, only later by the injected latency.
#[test]
fn delays_within_timeout_are_absorbed_not_retried() {
    let left = collection(16, 14, 21);
    let right = collection(10, 14, 22);
    let tau = 1;
    let catalog = freeze(&left, tau, 2);
    let expected = catalog
        .join(
            &right,
            tau,
            &PartSjConfig::default(),
            &ShardConfig {
                probe_threads: 1,
                verify_threads: 1,
                ..Default::default()
            },
        )
        .unwrap();
    let mut cfg = ClusterConfig::new(2, 2);
    cfg.faults = FaultPlan {
        seed: 7,
        delay_permille: 1000,
        delay_ms: 5,
        ..FaultPlan::none()
    };
    let clock = Arc::new(VirtualClock::new());
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &cfg)
        .unwrap()
        .with_clock(clock.clone());
    let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();

    assert!(served.is_complete());
    assert_eq!(served.outcome.pairs, expected.pairs);
    assert_eq!(served.outcome.stats.candidates, expected.stats.candidates);
    let n = planned_requests(&catalog, &right, tau).len() as u64;
    assert_eq!(served.telemetry.retries, 0, "absorbed, never retried");
    assert_eq!(served.telemetry.delay_ms, 5 * n);
    assert_eq!(clock.now_ms(), 5 * n);
}

/// A delay longer than the request timeout *is* a timeout: the response
/// is discarded before any work runs, so a fully delayed cluster serves
/// nothing — and counts nothing (no half-computed stats ever leak).
#[test]
fn delays_beyond_timeout_become_timeouts_without_double_counting() {
    let left = collection(16, 14, 21);
    let right = collection(10, 14, 22);
    let tau = 1;
    let catalog = freeze(&left, tau, 2);
    let mut cfg = ClusterConfig::new(2, 2);
    cfg.faults = FaultPlan {
        seed: 7,
        delay_permille: 1000,
        delay_ms: 60, // > the 50 ms request timeout
        ..FaultPlan::none()
    };
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &cfg).unwrap();
    let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();

    assert_eq!(served.telemetry.served, 0);
    assert!(served.outcome.pairs.is_empty());
    assert_eq!(
        served.outcome.stats.candidates, 0,
        "no discarded work leaks"
    );
    assert_eq!(served.outcome.stats.ted_calls, 0);
    let degraded = served.degraded.expect("nothing was served");
    // Everything planned is reported unserved: full coverage accounting.
    let mut expected_unserved = Vec::new();
    for (j, tree) in right.iter().enumerate() {
        let (lo, hi) = window_of(tree.len() as u32, tau);
        expected_unserved.extend((lo..=hi).map(|c| (j as u32, c)));
    }
    expected_unserved.sort_unstable();
    expected_unserved.dedup();
    assert_eq!(degraded.unserved, expected_unserved);
    assert!(degraded.lost_shards.is_empty(), "the loss was transient");
}
