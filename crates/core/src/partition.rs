//! δ-partitioning of LC-RS binary trees (§3.3, Algorithms 2 and 3).
//!
//! A δ-partitioning removes `δ − 1` *bridging edges* from the binary tree,
//! leaving `δ` connected components. The paper's scheme maximizes the
//! minimum component size: [`partitionable`] is the linear-time greedy test
//! of Algorithm 2 (cut a γ-subtree as soon as the residual subtree under
//! the current postorder node reaches `γ` nodes), and [`max_min_size`]
//! binary-searches the largest feasible `γ` (Algorithm 3).
//!
//! [`select_cuts`] re-runs the greedy with the optimal `γ` and returns the
//! first `δ − 1` cut nodes — the roots of the detached subgraphs; the
//! remainder around the tree root forms the δ-th subgraph.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use tsj_tree::{BinaryTree, NodeId};

/// Algorithm 2: is `binary` partitionable into `delta` subgraphs of size at
/// least `gamma` each?
///
/// Runs in `O(|T|)` using the cached binary postorder: the residual size of
/// a node is one plus the residual sizes of its children, zeroed whenever a
/// cut is taken.
pub fn partitionable(binary: &BinaryTree, delta: usize, gamma: u32) -> bool {
    if gamma == 0 {
        return binary.len() >= delta;
    }
    if (binary.len() as u64) < delta as u64 * gamma as u64 {
        return false;
    }
    let mut residual = vec![0u32; binary.len()];
    let mut found = 0usize;
    for &node in binary.postorder() {
        let mut size = 1u32;
        if let Some(l) = binary.left(node) {
            size += residual[l.index()];
        }
        if let Some(r) = binary.right(node) {
            size += residual[r.index()];
        }
        if size >= gamma {
            // Greedily detach the γ-subtree rooted here (Lemma 3 shows
            // greedy detachment preserves partitionability).
            found += 1;
            if found >= delta {
                return true;
            }
            residual[node.index()] = 0;
        } else {
            residual[node.index()] = size;
        }
    }
    false
}

/// Algorithm 3: the largest `γ` such that `binary` is `(δ, γ)`-partitionable.
///
/// Requires `|T| ≥ δ` (smaller trees cannot be cut into `δ` non-empty
/// subgraphs — the join layer handles them out-of-band).
///
/// # Panics
/// Panics if `binary.len() < delta` or `delta == 0`.
pub fn max_min_size(binary: &BinaryTree, delta: usize) -> u32 {
    assert!(delta >= 1, "delta must be positive");
    let n = binary.len();
    assert!(n >= delta, "tree of size {n} cannot be {delta}-partitioned");

    let gamma_max = (n / delta) as u32;
    // Lower bound (§3.3): each greedy subgraph has at most 2γ − 1 nodes, so
    // γ ≤ (n + δ − 1)/(2δ − 1) always admits a partitioning.
    let mut gamma_min = (((n + delta - 1) / (2 * delta - 1)) as u32).max(1);
    debug_assert!(partitionable(binary, delta, gamma_min));

    // Invariant: the answer lies in [gamma_min, gamma_min + c).
    // gamma_max ≥ gamma_min whenever n ≥ δ (shown in §3.3), so the
    // subtraction cannot underflow.
    let mut c = gamma_max - gamma_min + 1;
    while c > 1 {
        let gamma_mid = gamma_min + c / 2;
        if partitionable(binary, delta, gamma_mid) {
            gamma_min = gamma_mid;
            c -= c / 2;
        } else {
            c /= 2;
        }
    }
    gamma_min
}

/// Runs the greedy once more with the chosen `gamma` and returns the first
/// `delta − 1` cut nodes in postorder (roots of the detached subgraphs).
///
/// The returned list never contains the tree root: the remainder around the
/// root is the final subgraph. Each cut subgraph has at least `gamma`
/// residual nodes, and so does the remainder (the greedy would have found a
/// δ-th cut inside it).
pub fn select_cuts(binary: &BinaryTree, delta: usize, gamma: u32) -> Vec<NodeId> {
    let mut residual = vec![0u32; binary.len()];
    let mut cuts = Vec::with_capacity(delta.saturating_sub(1));
    for &node in binary.postorder() {
        if cuts.len() + 1 >= delta {
            break;
        }
        let mut size = 1u32;
        if let Some(l) = binary.left(node) {
            size += residual[l.index()];
        }
        if let Some(r) = binary.right(node) {
            size += residual[r.index()];
        }
        if size >= gamma && node != binary.root() {
            cuts.push(node);
            residual[node.index()] = 0;
        } else {
            residual[node.index()] = size;
        }
    }
    cuts
}

/// Random-partitioning ablation (§4.3 closing note): choose `delta − 1`
/// distinct non-root nodes uniformly at random as cut points.
///
/// The seed is mixed with the tree size so different trees in a collection
/// do not share cut patterns.
pub fn select_random_cuts(binary: &BinaryTree, delta: usize, seed: u64) -> Vec<NodeId> {
    let wanted = delta.saturating_sub(1).min(binary.len() - 1);
    let mut rng = rand::rngs::StdRng::seed_from_u64(
        seed ^ (binary.len() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
    );
    let mut non_root: Vec<NodeId> = binary.node_ids().filter(|&n| n != binary.root()).collect();
    non_root.shuffle(&mut rng);
    let mut cuts: Vec<NodeId> = non_root.into_iter().take(wanted).collect();
    // Keep cuts in ascending postorder so subgraph ordinals are well defined.
    cuts.sort_by_key(|&n| binary.post_of(n));
    cuts
}

/// Selects the `δ − 1` cut nodes of a tree under `scheme` — the one
/// partitioning entry point shared by every index producer (batch,
/// parallel, streaming, bipartite, search and the sharded index).
///
/// `salt` individualizes the [`PartitionScheme::Random`] seed per tree
///
/// [`PartitionScheme::Random`]: crate::config::PartitionScheme::Random
/// (callers pass the tree's collection index) and is ignored by the
/// deterministic max-min scheme.
pub fn cuts_for(
    binary: &BinaryTree,
    delta: usize,
    scheme: crate::config::PartitionScheme,
    salt: u64,
) -> Vec<NodeId> {
    match scheme {
        crate::config::PartitionScheme::MaxMin => {
            let gamma = max_min_size(binary, delta);
            select_cuts(binary, delta, gamma)
        }
        crate::config::PartitionScheme::Random { seed } => {
            select_random_cuts(binary, delta, seed ^ salt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_tree::{parse_bracket, BinaryTree, LabelInterner, Tree};

    fn binary(input: &str) -> BinaryTree {
        let mut labels = LabelInterner::new();
        let tree: Tree = parse_bracket(input, &mut labels).unwrap();
        BinaryTree::from_tree(&tree)
    }

    /// The binary tree of the paper's Figure 9 (11 nodes), built from a
    /// general tree whose LC-RS image matches it:
    /// binary left/right structure: N1.l=N2; N2.l=N3, N2.r=N7; N3.l=N4;
    /// N4.l=N5, N4.r=N6; N7.l=N8; N8.l=N9, N8.r=N11; N9.r=N10.
    fn figure9_binary() -> BinaryTree {
        // General-tree preimage: N1 has child N2; N2 children [N3, N7];
        // N3 child N4; N4 children [N5, N6]; N7 child N8; N8 children
        // [N9, N11]; N9 child N10... checking LC-RS: N9.l = N10 — but the
        // figure wants N9.r = N10, meaning N10 is N9's sibling in the
        // general tree: N8 children [N9, N10, N11]? Then N9.r = N10 and
        // N10.r = N11, with N8.l = N9 — the figure has N8.r = N11 though.
        // The exact figure topology matters less than the greedy trace; we
        // use the preimage below and verify the trace properties.
        let mut labels = LabelInterner::new();
        let l: Vec<_> = (1..=11).map(|i| labels.intern(&format!("l{i}"))).collect();
        let mut b = tsj_tree::TreeBuilder::new();
        let n1 = b.root(l[0]);
        let n2 = b.child(n1, l[1]);
        let n3 = b.child(n2, l[2]);
        let n4 = b.child(n3, l[3]);
        b.child(n4, l[4]); // N5
        b.child(n4, l[5]); // N6
        let n7 = b.child(n2, l[6]);
        let n8 = b.child(n7, l[7]);
        let n9 = b.child(n8, l[8]);
        b.child(n9, l[9]); // N10
        b.child(n8, l[10]); // N11
        BinaryTree::from_tree(&b.build())
    }

    #[test]
    fn partitionable_trivial_cases() {
        let bin = binary("{a{b}{c}}");
        assert!(partitionable(&bin, 1, 3));
        assert!(partitionable(&bin, 3, 1));
        assert!(!partitionable(&bin, 3, 2)); // 3 subgraphs of ≥2 need ≥6 nodes
        assert!(!partitionable(&bin, 4, 1)); // more parts than nodes
    }

    #[test]
    fn figure9_trace() {
        // The paper's example: δ = 3, γ = 3 is feasible on the 11-node tree.
        let bin = figure9_binary();
        assert_eq!(bin.len(), 11);
        assert!(partitionable(&bin, 3, 3));
        assert_eq!(max_min_size(&bin, 3), 3);
        let cuts = select_cuts(&bin, 3, 3);
        assert_eq!(cuts.len(), 2);
    }

    #[test]
    fn max_min_size_bounds() {
        for input in [
            "{a{b}{c}}",
            "{a{b{c}{d}}{e{f}{g}}}",
            "{a{b{c{d{e{f{g{h}}}}}}}}",
            "{r{a}{b}{c}{d}{e}{f}{g}{h}{i}{j}}",
        ] {
            let bin = binary(input);
            for delta in 1..=bin.len().min(7) {
                let gamma = max_min_size(&bin, delta);
                assert!(gamma >= 1);
                assert!(gamma as usize * delta <= bin.len());
                assert!(
                    partitionable(&bin, delta, gamma),
                    "{input}: delta={delta} gamma={gamma} must be feasible"
                );
                assert!(
                    !partitionable(&bin, delta, gamma + 1),
                    "{input}: delta={delta} gamma={gamma}+1 must be infeasible"
                );
            }
        }
    }

    #[test]
    fn paper_figure8_imbalance() {
        // §3.3's motivating example: a tree where δ=3 cannot be balanced.
        // Root with two size-50 wings forces one subgraph ≤ 50 and another
        // ≥ 100... we reproduce the shape at 1/10 scale: two 5-node wings
        // under a 2-node spine (12 nodes): perfectly balanced would be 4,
        // but the best min is smaller.
        let bin = binary("{s{t{a{a1}{a2}{a3}{a4}}{b{b1}{b2}{b3}{b4}}}}");
        let gamma = max_min_size(&bin, 3);
        assert!(gamma * 3 <= bin.len() as u32);
        assert!(partitionable(&bin, 3, gamma));
    }

    #[test]
    fn select_cuts_matches_partitionable_count() {
        let bin = binary("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}");
        let delta = 3;
        let gamma = max_min_size(&bin, delta);
        let cuts = select_cuts(&bin, delta, gamma);
        assert_eq!(cuts.len(), delta - 1);
        // Cut nodes are in ascending postorder and exclude the root.
        for pair in cuts.windows(2) {
            assert!(bin.post_of(pair[0]) < bin.post_of(pair[1]));
        }
        assert!(cuts.iter().all(|&c| c != bin.root()));
    }

    #[test]
    fn select_cuts_on_single_part() {
        let bin = binary("{a{b}{c}}");
        assert!(select_cuts(&bin, 1, 3).is_empty());
    }

    #[test]
    fn random_cuts_are_valid_and_deterministic() {
        let bin = binary("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}");
        let c1 = select_random_cuts(&bin, 4, 99);
        let c2 = select_random_cuts(&bin, 4, 99);
        assert_eq!(c1, c2);
        assert_eq!(c1.len(), 3);
        let distinct: std::collections::HashSet<_> = c1.iter().collect();
        assert_eq!(distinct.len(), 3);
        assert!(c1.iter().all(|&c| c != bin.root()));
    }

    #[test]
    fn random_cuts_capped_by_tree_size() {
        let bin = binary("{a{b}}");
        let cuts = select_random_cuts(&bin, 10, 3);
        assert_eq!(cuts.len(), 1, "only one non-root node exists");
    }

    #[test]
    #[should_panic(expected = "cannot be")]
    fn max_min_size_rejects_tiny_trees() {
        let bin = binary("{a{b}}");
        let _ = max_min_size(&bin, 3);
    }
}
