//! Per-node metrics: the cluster's own [`MetricsRegistry`] plus typed
//! per-node snapshots — the direct substrate for a `catalogd` server's
//! `/metrics` endpoint.
//!
//! Every router decision the telemetry counts is *attributed to a node*
//! here: serve attempts, responses, failed attempts, absorbed delays,
//! retries, failovers, backoff and delay milliseconds, and a
//! request-latency histogram (in clock milliseconds, so a
//! `VirtualClock` makes the distribution exactly reproducible). The
//! increments sit next to the [`crate::Telemetry`] increments in the
//! router with identical conditions, so per-node sums reconcile
//! **exactly** with the join-level telemetry and the typed
//! `Complete`/`Degraded` outcomes — a contract the `metrics_reconcile`
//! suite pins under seeded fault plans.
//!
//! The registry honors the global observability switch
//! ([`tsj_obs::global`]) *at cluster construction*: building a cluster
//! while observability is disabled hands every counter a shared sink
//! cell, and [`Cluster::metrics`](crate::Cluster::metrics) reports
//! zeros.

use tsj_obs::{labeled, Counter, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};

/// The metric handles for one node. Recording is a relaxed atomic op.
#[derive(Debug)]
pub(crate) struct NodeCells {
    pub(crate) attempts: Counter,
    pub(crate) served: Counter,
    pub(crate) failed: Counter,
    pub(crate) delays: Counter,
    pub(crate) retries: Counter,
    pub(crate) failovers: Counter,
    pub(crate) backoff_ms: Counter,
    pub(crate) delay_ms: Counter,
    pub(crate) latency: Histogram,
}

/// The cluster's registry plus per-node handle table. Public so the
/// `tsj-catalogd` TCP client can attribute router decisions to nodes
/// through the exact same handles the in-process cluster uses.
#[derive(Debug)]
pub struct ClusterMetrics {
    registry: MetricsRegistry,
    nodes: Vec<NodeCells>,
}

impl ClusterMetrics {
    /// Registers the full per-node series set for `nodes` nodes. The
    /// registry starts disabled (sink cells) when the global
    /// observability registry is disabled at this moment.
    pub fn new(nodes: usize) -> ClusterMetrics {
        let registry = if tsj_obs::global().is_enabled() {
            MetricsRegistry::new()
        } else {
            MetricsRegistry::disabled()
        };
        let cells = (0..nodes)
            .map(|n| NodeCells {
                attempts: registry.counter(&labeled("tsj_cluster_attempts_total", "node", n)),
                served: registry.counter(&labeled("tsj_cluster_requests_served_total", "node", n)),
                failed: registry.counter(&labeled("tsj_cluster_attempts_failed_total", "node", n)),
                delays: registry.counter(&labeled("tsj_cluster_delays_absorbed_total", "node", n)),
                retries: registry.counter(&labeled("tsj_cluster_retries_total", "node", n)),
                failovers: registry.counter(&labeled("tsj_cluster_failovers_total", "node", n)),
                backoff_ms: registry.counter(&labeled("tsj_cluster_backoff_ms_total", "node", n)),
                delay_ms: registry.counter(&labeled("tsj_cluster_delay_ms_total", "node", n)),
                latency: registry.histogram(&labeled("tsj_cluster_request_latency_ms", "node", n)),
            })
            .collect();
        ClusterMetrics {
            registry,
            nodes: cells,
        }
    }

    pub(crate) fn node(&self, n: usize) -> &NodeCells {
        &self.nodes[n]
    }

    /// A point-in-time snapshot of every registered series.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Typed per-node views; `health[n]` supplies each node's liveness.
    pub fn per_node(&self, health: &[bool]) -> Vec<NodeMetricsSnapshot> {
        if !self.registry.is_enabled() {
            // Handles are shared sinks; report zeros, not sink garbage.
            return health
                .iter()
                .enumerate()
                .map(|(node, &alive)| NodeMetricsSnapshot {
                    node,
                    alive,
                    ..NodeMetricsSnapshot::default()
                })
                .collect();
        }
        self.nodes
            .iter()
            .enumerate()
            .map(|(node, cells)| NodeMetricsSnapshot {
                node,
                alive: health.get(node).copied().unwrap_or(false),
                attempts: cells.attempts.get(),
                served: cells.served.get(),
                failed_attempts: cells.failed.get(),
                delays_absorbed: cells.delays.get(),
                retries: cells.retries.get(),
                failovers: cells.failovers.get(),
                backoff_ms: cells.backoff_ms.get(),
                delay_ms: cells.delay_ms.get(),
                request_latency_ms: cells.latency.snapshot(),
            })
            .collect()
    }
}

/// A point-in-time view of one node's lifetime counters (cumulative
/// across every join this cluster served).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NodeMetricsSnapshot {
    /// The node id.
    pub node: usize,
    /// Whether the node is currently believed alive.
    pub alive: bool,
    /// Serve attempts routed at this node (first tries and retries,
    /// successful or not). Always `served + failed_attempts`.
    pub attempts: u64,
    /// Attempts that produced a response.
    pub served: u64,
    /// Attempts that produced no response (transient errors, timeouts,
    /// over-deadline delays, the node being down).
    pub failed_attempts: u64,
    /// Injected delays this node absorbed while still serving.
    pub delays_absorbed: u64,
    /// Retry attempts routed at this node after another attempt failed.
    pub retries: u64,
    /// Times a request failed over because this node was (or went) down.
    pub failovers: u64,
    /// Backoff slept before retrying against this node, in clock ms.
    pub backoff_ms: u64,
    /// Injected delay absorbed by this node's responses, in clock ms.
    pub delay_ms: u64,
    /// Per-served-request latency (deadline-accounted clock ms: absorbed
    /// delays, timeouts and backoffs spent on the request).
    pub request_latency_ms: HistogramSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registers_one_series_set_per_node() {
        let metrics = ClusterMetrics::new(2);
        metrics.node(0).served.inc();
        metrics.node(1).latency.record(5);
        let per_node = metrics.per_node(&[true, false]);
        assert_eq!(per_node.len(), 2);
        assert_eq!(per_node[0].served, 1);
        assert!(per_node[0].alive);
        assert_eq!(per_node[1].request_latency_ms.count(), 1);
        assert!(!per_node[1].alive);
        let snapshot = metrics.snapshot();
        assert_eq!(
            snapshot.counter("tsj_cluster_requests_served_total{node=\"0\"}"),
            Some(1)
        );
    }
}
