//! Injectable time for deterministic timing behavior.
//!
//! Everything in the observability layer that stamps a time — trace
//! spans, request-latency histograms, backoff accounting in
//! `tsj-cluster` — goes through a [`Clock`]. Tests and the in-process
//! cluster default to [`VirtualClock`] — time is an atomic counter that
//! only "sleeping" advances, so a fault matrix with thousands of
//! injected delays runs in microseconds and exact spans/backoff
//! schedules can be asserted down to the millisecond. A deployment that
//! wants real waiting swaps in [`SystemClock`] without touching any
//! policy.
//!
//! This module originated in `tsj-cluster` and was promoted here so the
//! trace layer and the router share one notion of time; `tsj-cluster`
//! re-exports it unchanged.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A source of milliseconds and a way to wait.
pub trait Clock: std::fmt::Debug + Send + Sync {
    /// Milliseconds since the clock's epoch.
    fn now_ms(&self) -> u64;

    /// Blocks (or pretends to) for `ms` milliseconds.
    fn sleep_ms(&self, ms: u64);
}

/// Simulated time: an atomic millisecond counter advanced only by
/// [`Clock::sleep_ms`]. The default for in-process clusters and the only
/// clock the deterministic tests use.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock at time zero.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now_ms(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }

    fn sleep_ms(&self, ms: u64) {
        self.now.fetch_add(ms, Ordering::SeqCst);
    }
}

/// Wall-clock time: milliseconds since construction, real
/// [`std::thread::sleep`] waits.
#[derive(Debug)]
pub struct SystemClock {
    start: Instant,
}

impl SystemClock {
    /// A system clock whose epoch is now.
    pub fn new() -> SystemClock {
        SystemClock {
            start: Instant::now(),
        }
    }
}

impl Default for SystemClock {
    fn default() -> SystemClock {
        SystemClock::new()
    }
}

impl Clock for SystemClock {
    fn now_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    fn sleep_ms(&self, ms: u64) {
        std::thread::sleep(std::time::Duration::from_millis(ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_advances_only_by_sleeping() {
        let clock = VirtualClock::new();
        assert_eq!(clock.now_ms(), 0);
        clock.sleep_ms(25);
        clock.sleep_ms(5);
        assert_eq!(clock.now_ms(), 30);
    }
}
