//! Per-node metrics reconcile *exactly* with the join-level telemetry and
//! the typed `Complete`/`Degraded` outcomes, under pinned-seed fault
//! plans on a [`VirtualClock`]. Every router increment has a per-node
//! twin recorded under identical conditions, so these are equalities,
//! not bounds.

use partsj::PartSjConfig;
use std::sync::Arc;
use tsj_catalog::Catalog;
use tsj_cluster::{
    Cluster, ClusterConfig, ClusterJoin, FaultPlan, NodeMetricsSnapshot, VirtualClock,
};
use tsj_datagen::{synthetic, SyntheticParams};
use tsj_shard::ShardConfig;
use tsj_tree::{LabelInterner, Tree};

fn collection(n: usize, avg_size: usize, seed: u64) -> Vec<Tree> {
    synthetic(
        n,
        &SyntheticParams {
            avg_size,
            ..Default::default()
        },
        seed,
    )
}

fn freeze(left: &[Tree], tau: u32, shards: usize) -> Catalog {
    Catalog::freeze(
        left.to_vec(),
        LabelInterner::new(),
        tau,
        &PartSjConfig::default(),
        &ShardConfig {
            shards,
            probe_threads: 1,
            verify_threads: 1,
            ..Default::default()
        },
    )
}

/// Every reconciliation invariant between `Cluster::metrics()`, the
/// join telemetry, the per-request rows and the degradation report.
/// Panics name the fault seed so a failure is replayable.
fn check_reconciled(seed: u64, served: &ClusterJoin, nodes: &[NodeMetricsSnapshot]) {
    let ctx = format!("TSJ_FAULT_SEED={seed:#x}");
    let telemetry = &served.telemetry;
    for node in nodes {
        assert_eq!(
            node.attempts,
            node.served + node.failed_attempts,
            "{ctx}: node {} attempts split",
            node.node
        );
        assert_eq!(
            node.request_latency_ms.count(),
            node.served,
            "{ctx}: node {} latency histogram counts served requests",
            node.node
        );
    }
    let sum = |f: fn(&NodeMetricsSnapshot) -> u64| nodes.iter().map(f).sum::<u64>();
    assert_eq!(sum(|n| n.attempts), telemetry.attempts, "{ctx}: attempts");
    assert_eq!(sum(|n| n.served), telemetry.served, "{ctx}: served");
    assert_eq!(
        sum(|n| n.failed_attempts) + sum(|n| n.delays_absorbed),
        telemetry.faults,
        "{ctx}: faults = failed attempts + absorbed delays"
    );
    assert_eq!(sum(|n| n.retries), telemetry.retries, "{ctx}: retries");
    assert_eq!(
        sum(|n| n.failovers),
        telemetry.failovers,
        "{ctx}: failovers"
    );
    assert_eq!(
        sum(|n| n.backoff_ms),
        telemetry.backoff_ms,
        "{ctx}: backoff_ms"
    );
    assert_eq!(sum(|n| n.delay_ms), telemetry.delay_ms, "{ctx}: delay_ms");

    // The per-request rows tell the same story a third way.
    let rows = &telemetry.per_request;
    assert_eq!(rows.len() as u64, telemetry.requests, "{ctx}: one row each");
    assert_eq!(
        rows.iter().map(|r| u64::from(r.attempts)).sum::<u64>(),
        telemetry.attempts,
        "{ctx}: row attempts"
    );
    assert_eq!(
        rows.iter().filter(|r| r.served).count() as u64,
        telemetry.served,
        "{ctx}: row served"
    );
    assert_eq!(
        rows.iter().map(|r| r.backoff_ms).sum::<u64>(),
        telemetry.backoff_ms,
        "{ctx}: row backoff"
    );
    // Served rows' spent time is exactly what the latency histograms saw.
    assert_eq!(
        rows.iter()
            .filter(|r| r.served)
            .map(|r| r.spent_ms)
            .sum::<u64>(),
        nodes.iter().map(|n| n.request_latency_ms.sum).sum::<u64>(),
        "{ctx}: latency sum"
    );

    // Degraded effort = the unserved rows' effort, exactly.
    match &served.degraded {
        None => assert!(
            rows.iter().all(|r| r.served),
            "{ctx}: complete join has no unserved rows"
        ),
        Some(d) => {
            assert_eq!(
                d.attempts,
                telemetry
                    .unserved_requests()
                    .map(|r| u64::from(r.attempts))
                    .sum::<u64>(),
                "{ctx}: degraded attempts"
            );
            assert_eq!(
                d.retries,
                telemetry
                    .unserved_requests()
                    .map(|r| u64::from(r.retries))
                    .sum::<u64>(),
                "{ctx}: degraded retries"
            );
            assert_eq!(
                d.backoff_ms,
                telemetry
                    .unserved_requests()
                    .map(|r| r.backoff_ms)
                    .sum::<u64>(),
                "{ctx}: degraded backoff"
            );
        }
    }
}

/// A mixed storm — delays, timeouts, transients and node deaths — across
/// several seeds: per-node sums always equal the telemetry totals.
#[test]
fn per_node_metrics_reconcile_under_mixed_faults() {
    let left = collection(24, 14, 21);
    let right = collection(12, 14, 22);
    let tau = 1;
    let catalog = freeze(&left, tau, 4);
    let snapshot = catalog.to_bytes();
    for seed in [0x5EED, 0xBAD_CAFE, 7, 424242] {
        let mut cfg = ClusterConfig::new(3, 2);
        cfg.faults = FaultPlan {
            seed,
            delay_permille: 220,
            delay_ms: 8,
            timeout_permille: 120,
            transient_permille: 150,
            node_down_permille: 60,
            ..FaultPlan::none()
        };
        let mut cluster = Cluster::from_snapshot(snapshot.clone(), &cfg)
            .unwrap()
            .with_clock(Arc::new(VirtualClock::new()));
        let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
        let nodes = cluster.metrics();
        assert!(
            nodes.iter().any(|n| n.attempts > 0),
            "TSJ_FAULT_SEED={seed:#x}: the storm exercised the router"
        );
        check_reconciled(seed, &served, &nodes);
    }
}

/// Metrics are cumulative across joins on the same cluster, and a killed
/// node's failovers land on the node that was down.
#[test]
fn metrics_accumulate_across_joins_and_attribute_failovers() {
    let left = collection(16, 14, 21);
    let right = collection(6, 14, 23);
    let tau = 1;
    let catalog = freeze(&left, tau, 2);
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &ClusterConfig::new(2, 2))
        .unwrap()
        .with_clock(Arc::new(VirtualClock::new()));

    let first = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
    assert!(first.is_complete());
    let after_one = cluster.metrics();
    let served_once: u64 = after_one.iter().map(|n| n.served).sum();
    assert_eq!(served_once, first.telemetry.served);

    cluster.kill_node(0);
    let second = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
    assert!(second.is_complete(), "replica covers the dead node");
    let after_two = cluster.metrics();
    assert_eq!(
        after_two.iter().map(|n| n.served).sum::<u64>(),
        first.telemetry.served + second.telemetry.served,
        "counters are cumulative across joins"
    );
    assert!(!after_two[0].alive);
    assert_eq!(
        after_two[0].served, after_one[0].served,
        "a dead node serves nothing new"
    );
    assert!(
        after_two[1].served > after_one[1].served,
        "the replica absorbed the dead node's share"
    );
}

/// Registered series survive into the raw snapshot with the documented
/// naming scheme, so the exporters downstream see stable names.
#[test]
fn snapshot_uses_the_documented_series_names() {
    let left = collection(16, 14, 21);
    let right = collection(4, 14, 23);
    let tau = 1;
    let catalog = freeze(&left, tau, 2);
    let mut cluster =
        Cluster::from_snapshot(catalog.to_bytes(), &ClusterConfig::new(2, 1)).unwrap();
    let served = cluster.join(&right, tau, &PartSjConfig::default()).unwrap();
    assert!(served.is_complete());
    let snapshot = cluster.metrics_snapshot();
    let total: u64 = (0..2)
        .map(|n| {
            snapshot
                .counter(&format!(
                    "tsj_cluster_requests_served_total{{node=\"{n}\"}}"
                ))
                .expect("series registered per node")
        })
        .sum();
    assert_eq!(total, served.telemetry.served);
    assert!(snapshot
        .histogram("tsj_cluster_request_latency_ms{node=\"0\"}")
        .is_some());
}
