//! Fault-tolerant cluster serving — the full failure arc on one frozen
//! snapshot:
//!
//! 1. **Freeze** a reference catalog (8 shards, τ = 2) and split it
//!    across an in-process [`Cluster`] of 4 nodes at replication 2.
//! 2. **Serve** a probe batch through the scatter/gather router and
//!    cross-check it bit-identical against single-node `Catalog::join`.
//! 3. **Kill one node** mid-workload: every shard keeps a replica, the
//!    router fails over, the result is still bit-identical.
//! 4. **Kill its neighbor too**: the shards they co-owned lose every
//!    copy — the join degrades to a typed coverage report naming exactly
//!    which `(probe, size class)` combinations went unserved. Never a
//!    silent wrong answer.
//! 5. **Recover**: re-replicate the lost shard slots onto the survivors
//!    from the retained snapshot, and full bit-identical service resumes.
//!
//! ```bash
//! cargo run --release --example cluster_failover
//! ```

use tree_similarity_join::prelude::*;

fn main() {
    let config = PartSjConfig::default();
    let tau = 2u32;

    // The reference side, frozen once at the serving ceiling.
    let catalog_trees = swissprot_like(300, 2015);
    let catalog = Catalog::freeze(
        catalog_trees.clone(),
        LabelInterner::new(),
        tau,
        &config,
        &ShardConfig::with_shards(8),
    );

    // The probe side: fresh documents plus lightly edited revisions of
    // catalog entries, so the join has real near-duplicates to find.
    use tree_similarity_join::datagen::random_edit_script;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let mut feed = swissprot_like(40, 7);
    for original in catalog_trees.iter().step_by(9).take(30) {
        let (revision, _) = random_edit_script(original, 1, &mut rng, 64);
        feed.push(revision);
    }

    // The single-node truth every cluster answer is held against.
    let expected = catalog
        .join(&feed, tau, &config, &ShardConfig::default())
        .expect("tau within the frozen ceiling");

    // 1. Split the snapshot across 4 nodes, each shard on 2 of them.
    let mut cluster = Cluster::from_snapshot(catalog.to_bytes(), &ClusterConfig::new(4, 2))
        .expect("well-formed snapshot");
    println!(
        "cluster: {} nodes x replication 2 over {} shards (tau = {})",
        cluster.node_count(),
        cluster.shard_count(),
        cluster.tau()
    );

    // 2. Healthy serve: bit-identical to the single-node catalog join.
    let served = cluster.join(&feed, tau, &config).expect("healthy join");
    assert!(served.is_complete());
    assert_eq!(served.outcome.pairs, expected.pairs);
    assert_eq!(served.outcome.stats.candidates, expected.stats.candidates);
    println!(
        "healthy:   {} pairs from {} candidates over {} shard requests — identical to single-node",
        served.outcome.pairs.len(),
        served.outcome.stats.candidates,
        served.telemetry.requests
    );

    // 3. Kill one node mid-workload: replicas cover, same answer.
    cluster.kill_node(1);
    let failed_over = cluster.join(&feed, tau, &config).expect("failover join");
    assert!(failed_over.is_complete());
    assert_eq!(failed_over.outcome.pairs, expected.pairs);
    println!(
        "node 1 down: still {} pairs, still bit-identical (alive: {:?}, lost shards: none)",
        failed_over.outcome.pairs.len(),
        cluster.alive_nodes()
    );
    // The telemetry quantifies what the failover cost: every request
    // carries its attempt/retry/backoff tally.
    let t = &failed_over.telemetry;
    println!(
        "           effort: {} attempts for {} requests, {} retries, {} failovers, {} ms backoff",
        t.attempts, t.requests, t.retries, t.failovers, t.backoff_ms
    );
    if let Some(hot) = t.hottest_request() {
        println!(
            "           hottest request: probe {} shard {} took {} attempts ({} ms backoff)",
            hot.probe, hot.shard, hot.attempts, hot.backoff_ms
        );
    }

    // 4. Kill its replica neighbor: the shards they co-owned are gone.
    cluster.kill_node(2);
    let lost = cluster.lost_shards();
    assert!(!lost.is_empty());
    let degraded = cluster.join(&feed, tau, &config).expect("degraded join");
    let report = degraded.degraded.as_ref().expect("coverage report");
    assert_eq!(report.lost_shards, lost);
    assert!(degraded.outcome.pairs.len() <= expected.pairs.len());
    // Every served pair is a true pair — degradation only ever omits.
    for pair in &degraded.outcome.pairs {
        assert!(expected.pairs.contains(pair));
    }
    println!(
        "node 2 down: shards {:?} unrecoverable -> Degraded {{ {} probes affected, classes {:?} }}",
        report.lost_shards,
        report.affected_probes(),
        report.unserved_classes()
    );
    println!(
        "           {} of {} pairs still proven; the gap is reported, never silent",
        degraded.outcome.pairs.len(),
        expected.pairs.len()
    );
    println!(
        "           effort sunk into the unserved requests: {} attempts, {} retries, {} ms backoff",
        report.attempts, report.retries, report.backoff_ms
    );

    // 5. Recover: re-replicate the dead nodes' shard slots onto the
    //    survivors from the retained snapshot.
    let moved = cluster.recover().expect("recovery from the snapshot");
    assert!(cluster.lost_shards().is_empty());
    let healed = cluster.join(&feed, tau, &config).expect("healed join");
    assert!(healed.is_complete());
    assert_eq!(healed.outcome.pairs, expected.pairs);
    assert_eq!(healed.outcome.stats.candidates, expected.stats.candidates);
    println!(
        "recover:   {moved} shard slots re-replicated onto {:?} — bit-identical service resumed",
        cluster.alive_nodes()
    );

    // Lifetime per-node accounting across the whole arc, straight from
    // `Cluster::metrics()` — the substrate a `catalogd` would export.
    println!("per-node lifetime metrics:");
    for node in cluster.metrics() {
        println!(
            "  node {} ({}): {} attempts = {} served + {} failed | {} retries, {} failovers, p99 latency {} ms",
            node.node,
            if node.alive { "alive" } else { "down" },
            node.attempts,
            node.served,
            node.failed_attempts,
            node.retries,
            node.failovers,
            node.request_latency_ms.p99()
        );
    }
}
