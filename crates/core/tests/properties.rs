//! Property-based correctness tests for PartSJ.
//!
//! The two load-bearing properties:
//!
//! 1. **Lemma 2** — after at most `τ` edit operations, at least one
//!    subgraph of any `δ = 2τ+1`-partitioning of the original tree embeds
//!    in the edited tree;
//! 2. **Join equivalence** — PartSJ (all complete configurations) returns
//!    exactly the brute-force result set on random collections.

use partsj::{
    build_subgraphs, max_min_size, partitionable, partsj_join_detailed, partsj_join_with,
    partsj_topk, select_cuts, subgraph_matches, AdaptiveConfig, PartSjConfig, PartitionScheme,
    WindowPolicy,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tsj_baselines::brute_force_join;
use tsj_datagen::{grow_tree, random_edit_script, ShapeProfile};
use tsj_ted::{ted, JoinStats};
use tsj_tree::{BinaryTree, Tree};

/// The structural shape of a stats block's per-stage counters: the
/// sorted stage-name set and the total kills/accepts across stages.
fn stage_shape(stats: &JoinStats) -> (Vec<&'static str>, u64) {
    let mut names: Vec<&'static str> = stats.stage_counts.iter().map(|c| c.stage).collect();
    names.sort_unstable();
    let sum = stats.stage_counts.iter().map(|c| c.count).sum();
    (names, sum)
}

fn random_tree(seed: u64, size: usize, labels: u32, deepen: f64) -> Tree {
    let profile = ShapeProfile {
        max_fanout: 4,
        max_depth: 12,
        deepen_prob: deepen,
    };
    grow_tree(&mut StdRng::seed_from_u64(seed), size, labels, &profile)
}

fn random_collection(seed: u64, count: usize, labels: u32) -> Vec<Tree> {
    // Mix fresh trees with lightly edited copies so joins are non-empty.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut trees = Vec::with_capacity(count);
    for i in 0..count {
        if i >= 2 && rng.gen_bool(0.5) {
            let base_idx = rng.gen_range(0..trees.len());
            let edits = rng.gen_range(0..4usize);
            let (edited, _) = random_edit_script(&trees[base_idx], edits, &mut rng, labels);
            trees.push(edited);
        } else {
            let size = rng.gen_range(4..28usize);
            let deepen = rng.gen_range(0.0..0.7);
            trees.push(random_tree(rng.gen(), size, labels, deepen));
        }
    }
    trees
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 2, end to end: partition, edit ≤ τ times, search for an
    /// embedded subgraph anywhere in the edited tree.
    #[test]
    fn lemma2_some_subgraph_survives(seed in any::<u64>(), tau in 1u32..4) {
        let delta = 2 * tau as usize + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let size = rng.gen_range(delta..delta + 40);
        let tree = random_tree(rng.gen(), size, 6, 0.3);
        prop_assume!(tree.len() >= delta);

        let binary = BinaryTree::from_tree(&tree);
        let gamma = max_min_size(&binary, delta);
        let cuts = select_cuts(&binary, delta, gamma);
        let subgraphs = build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, 0);
        prop_assert_eq!(subgraphs.len(), delta);

        let edits = rng.gen_range(0..=tau as usize);
        let (edited, _) = random_edit_script(&tree, edits, &mut rng, 6);
        let edited_bin = BinaryTree::from_tree(&edited);

        let survived = subgraphs.iter().any(|sg| {
            edited_bin
                .node_ids()
                .any(|node| subgraph_matches(sg, &edited_bin, node))
        });
        prop_assert!(
            survived,
            "no subgraph survived {} edits (tau {}, tree size {})",
            edits, tau, tree.len()
        );
    }

    /// Join equivalence: every *complete* configuration (Safe window with
    /// MaxMin or Random partitioning) must equal brute force. The paper's
    /// Tight window is knowingly incomplete (≈0.2% of randomized runs, see
    /// `window_sweep.rs`), so it is only required to be a subset.
    #[test]
    fn partsj_equals_brute_force(seed in any::<u64>(), tau in 1u32..4) {
        let trees = random_collection(seed, 26, 5);
        let expected = brute_force_join(&trees, tau);

        for config in [
            PartSjConfig::default(),
            PartSjConfig {
                partitioning: PartitionScheme::Random { seed },
                ..Default::default()
            },
        ] {
            let outcome = partsj_join_with(&trees, tau, &config);
            prop_assert_eq!(
                &outcome.pairs,
                &expected.pairs,
                "config {:?} diverged from brute force (tau {})",
                config,
                tau
            );
        }

        let tight = partsj_join_with(
            &trees,
            tau,
            &PartSjConfig { window: WindowPolicy::Tight, ..Default::default() },
        );
        for pair in &tight.pairs {
            prop_assert!(
                expected.pairs.contains(pair),
                "tight window produced a non-result pair {:?}",
                pair
            );
        }
    }

    /// Online verify-chain reordering is invisible in *decisions*: the
    /// same result pairs and — because a sound lower-bound reject and a
    /// sound upper-bound accept can never fire on the same pair —
    /// identical aggregate totals (candidates, TED calls, prefilter
    /// skips, early accepts). Per-stage *attribution* legitimately
    /// shifts (the first sound stage to fire gets the credit), so the
    /// per-stage check is structural: the same stage set, with kills
    /// summing to the same aggregates.
    #[test]
    fn adaptive_chain_matches_fixed(seed in any::<u64>(), tau in 0u32..4) {
        let trees = random_collection(seed, 22, 5);
        let (fixed, _) = partsj_join_detailed(&trees, tau, &PartSjConfig::default());
        let config = PartSjConfig {
            adaptive: AdaptiveConfig {
                reorder_chain: true,
                reorder_every: 8, // retune aggressively to stress the permutation
                balanced_shards: false,
            },
            ..Default::default()
        };
        let (adaptive, _) = partsj_join_detailed(&trees, tau, &config);
        prop_assert_eq!(&adaptive.pairs, &fixed.pairs);
        prop_assert_eq!(adaptive.stats.candidates, fixed.stats.candidates);
        prop_assert_eq!(adaptive.stats.ted_calls, fixed.stats.ted_calls);
        prop_assert_eq!(adaptive.stats.prefilter_skips, fixed.stats.prefilter_skips);
        prop_assert_eq!(adaptive.stats.early_accepts, fixed.stats.early_accepts);
        let (a_names, a_sum) = stage_shape(&adaptive.stats);
        let (f_names, f_sum) = stage_shape(&fixed.stats);
        prop_assert_eq!(a_names, f_names);
        prop_assert_eq!(a_sum, f_sum);
        prop_assert_eq!(
            a_sum,
            fixed.stats.prefilter_skips + fixed.stats.early_accepts,
            "stage counts must account for exactly the skips and accepts"
        );
    }

    /// Top-k is exactly the first `k` of the exhaustive join sorted by
    /// `(distance, i, j)` — ties resolved identically.
    #[test]
    fn topk_equals_exhaustive_prefix(seed in any::<u64>(), k in 0usize..12) {
        let trees = random_collection(seed, 14, 4);
        let mut all: Vec<(u32, u32, u32)> = Vec::new();
        for i in 0..trees.len() {
            for j in i + 1..trees.len() {
                all.push((ted(&trees[i], &trees[j]), i as u32, j as u32));
            }
        }
        all.sort_unstable();
        let outcome = partsj_topk(&trees, k);
        let got: Vec<(u32, u32, u32)> = outcome
            .pairs
            .iter()
            .map(|p| (p.distance, p.i, p.j))
            .collect();
        all.truncate(k);
        prop_assert_eq!(got, all);
    }

    /// Candidate-count ordering between the windows: the tight window
    /// registers subgraphs in fewer groups, so it can only produce fewer
    /// (or equal) candidates, and its results are a subset of Safe's.
    #[test]
    fn window_candidate_ordering(seed in any::<u64>(), tau in 1u32..3) {
        let trees = random_collection(seed, 20, 5);
        let (tight, _) = partsj_join_detailed(
            &trees,
            tau,
            &PartSjConfig { window: WindowPolicy::Tight, ..Default::default() },
        );
        let (safe, _) = partsj_join_detailed(&trees, tau, &PartSjConfig::default());
        prop_assert!(tight.stats.candidates <= safe.stats.candidates);
        prop_assert!(tight.stats.results <= tight.stats.candidates);
        for pair in &tight.pairs {
            prop_assert!(safe.pairs.contains(pair));
        }
    }

    /// Partition invariants on random trees: δ disjoint components covering
    /// the tree, each of at least the optimal γ nodes, and γ is maximal.
    #[test]
    fn partition_invariants(seed in any::<u64>(), tau in 1u32..5) {
        let delta = 2 * tau as usize + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let size = rng.gen_range(delta..delta + 60);
        let tree = random_tree(rng.gen(), size, 8, 0.4);
        prop_assume!(tree.len() >= delta);
        let binary = BinaryTree::from_tree(&tree);

        let gamma = max_min_size(&binary, delta);
        prop_assert!(partitionable(&binary, delta, gamma));
        prop_assert!(!partitionable(&binary, delta, gamma + 1));

        let cuts = select_cuts(&binary, delta, gamma);
        prop_assert_eq!(cuts.len(), delta - 1);
        let subgraphs = build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, 0);
        prop_assert_eq!(subgraphs.len(), delta);

        let total: usize = subgraphs.iter().map(|s| s.component_size()).sum();
        prop_assert_eq!(total, binary.len(), "components must partition the tree");
        for sg in &subgraphs {
            prop_assert!(
                sg.component_size() >= gamma as usize,
                "subgraph {} has {} nodes < gamma {}",
                sg.ordinal, sg.component_size(), gamma
            );
        }
        // Ordinals are assigned in discovery order, 1-based and dense.
        for (idx, sg) in subgraphs.iter().enumerate() {
            prop_assert_eq!(sg.ordinal as usize, idx + 1);
        }
    }

    /// Every subgraph of a tree matches its own tree at its own root
    /// (self-containment sanity for the matcher).
    #[test]
    fn subgraphs_match_their_container(seed in any::<u64>(), tau in 1u32..4) {
        let delta = 2 * tau as usize + 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let size = rng.gen_range(delta..delta + 30);
        let tree = random_tree(rng.gen(), size, 4, 0.2);
        prop_assume!(tree.len() >= delta);
        let binary = BinaryTree::from_tree(&tree);
        let gamma = max_min_size(&binary, delta);
        let subgraphs = build_subgraphs(
            &binary,
            &tree.postorder_numbers(),
            &select_cuts(&binary, delta, gamma),
            0,
        );
        for sg in &subgraphs {
            prop_assert!(subgraph_matches(sg, &binary, sg.root));
        }
    }
}

/// Deterministic regression net: many seeds, moderate scale, sequential.
#[test]
fn join_equivalence_sweep() {
    for seed in 0..12u64 {
        let trees = random_collection(seed.wrapping_mul(0x9e3779b9), 30, 6);
        for tau in 1..=3u32 {
            let expected = brute_force_join(&trees, tau);
            let actual = partsj_join_with(&trees, tau, &PartSjConfig::default());
            assert_eq!(
                actual.pairs, expected.pairs,
                "seed {seed} tau {tau}: PartSJ diverged from brute force"
            );
        }
    }
}

/// The literal paper window (absolute postorder keys) must be a subset of
/// the truth — and this test documents that it *can* miss results, which
/// is why the suffix correction is the default.
#[test]
fn paper_absolute_window_is_subset_and_can_miss() {
    let mut missed_anywhere = false;
    for seed in 0..40u64 {
        let trees = random_collection(seed.wrapping_mul(31), 24, 5);
        for tau in 1..=3u32 {
            let expected = brute_force_join(&trees, tau);
            let paper = partsj_join_with(
                &trees,
                tau,
                &PartSjConfig {
                    window: WindowPolicy::PaperAbsolute,
                    ..Default::default()
                },
            );
            for pair in &paper.pairs {
                assert!(
                    expected.pairs.contains(pair),
                    "paper window produced a non-result pair {pair:?}"
                );
            }
            if paper.pairs.len() < expected.pairs.len() {
                missed_anywhere = true;
            }
        }
    }
    // We do not assert `missed_anywhere` — completeness violations need
    // size-differing near-pairs — but report it for the curious:
    eprintln!("paper-absolute window missed results in sweep: {missed_anywhere}");
}
