//! Catalog life-cycle costs: what freezing buys a serving workload.
//!
//! Series:
//!
//! * `catalog/freeze/*`        — partition + shard-index a collection
//!   (the one-time cost a snapshot amortizes away);
//! * `catalog/save/*`          — serialize the frozen catalog to bytes;
//! * `catalog/load/*`          — parse + validate + reassemble from
//!   bytes (what a serving process pays at startup instead of a
//!   freeze);
//! * `catalog/serve/*`         — one probe batch against a loaded
//!   catalog (the steady-state cost per request);
//! * `catalog/rebuild_serve/*` — the same batch via `sharded_rs_join`,
//!   i.e. rebuilding the index for every request — the baseline the
//!   catalog exists to beat. `serve / rebuild_serve` is the per-request
//!   speedup of freezing once.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::PartSjConfig;
use tsj_catalog::Catalog;
use tsj_datagen::swissprot_like;
use tsj_shard::{sharded_rs_join, ShardConfig};
use tsj_tree::LabelInterner;

fn bench_catalog(c: &mut Criterion) {
    let config = PartSjConfig::default();
    let tau = 3u32;
    // Single-threaded pools: the 1-CPU bench container measures the
    // inline path; re-record on multi-core for fan-out numbers.
    let shard_cfg = ShardConfig {
        shards: 4,
        probe_threads: 1,
        verify_threads: 1,
        ..Default::default()
    };
    let mut group = c.benchmark_group("catalog");
    for &n in &[200usize, 400] {
        let left = swissprot_like(n, 2015);
        let probes = swissprot_like(50, 7);
        let catalog = Catalog::freeze(left.clone(), LabelInterner::new(), tau, &config, &shard_cfg);
        let bytes = catalog.to_bytes();

        group.bench_with_input(BenchmarkId::new("freeze", n), &left, |b, left| {
            b.iter(|| Catalog::freeze(left.clone(), LabelInterner::new(), tau, &config, &shard_cfg))
        });
        group.bench_with_input(BenchmarkId::new("save", n), &catalog, |b, catalog| {
            b.iter(|| catalog.to_bytes())
        });
        group.bench_with_input(BenchmarkId::new("load", n), &bytes, |b, bytes| {
            b.iter(|| Catalog::from_bytes(bytes.clone()).expect("valid snapshot"))
        });
        group.bench_with_input(BenchmarkId::new("serve", n), &probes, |b, probes| {
            b.iter(|| {
                catalog
                    .join(probes, tau, &config, &shard_cfg)
                    .expect("tau within ceiling")
            })
        });
        group.bench_with_input(
            BenchmarkId::new("rebuild_serve", n),
            &probes,
            |b, probes| b.iter(|| sharded_rs_join(&left, probes, tau, &config, &shard_cfg)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_catalog);
criterion_main!(benches);
