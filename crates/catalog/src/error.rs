//! Typed failure modes of snapshot I/O and catalog queries.
//!
//! Every malformed-snapshot path — truncation, a foreign file, a future
//! format version, bit rot — maps to a [`CatalogError`] variant; decoding
//! never panics and never constructs a partially valid catalog.

use std::fmt;

/// Everything that can go wrong saving, loading or querying a catalog.
#[derive(Debug)]
pub enum CatalogError {
    /// An underlying filesystem operation failed.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic — not a catalog
    /// snapshot at all.
    BadMagic {
        /// The first bytes actually found.
        found: [u8; 8],
    },
    /// The snapshot was written by an unknown (newer or retired) format
    /// version.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// The one version this build reads.
        supported: u32,
    },
    /// The file ends before the structure it promises — a partial write
    /// or truncated download.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// A section's stored checksum disagrees with its bytes.
    ChecksumMismatch {
        /// Which section failed (e.g. `"trees"`, `"shard 2"`).
        section: String,
    },
    /// The bytes parse but describe an inconsistent structure (dangling
    /// handle, out-of-range label, mis-routed shard, …).
    Corrupt {
        /// What invariant was violated.
        context: String,
    },
    /// A query asked for a threshold above the one the catalog was
    /// frozen for. Candidate generation is only complete up to the
    /// freeze threshold — rebuild the catalog with a larger `τ` instead.
    TauExceedsFrozen {
        /// The requested per-query threshold.
        query: u32,
        /// The threshold the snapshot was frozen with.
        frozen: u32,
    },
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::Io(e) => write!(f, "snapshot I/O failed: {e}"),
            CatalogError::BadMagic { found } => {
                write!(f, "not a catalog snapshot (leading bytes {found:02x?})")
            }
            CatalogError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads {supported})"
            ),
            CatalogError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            CatalogError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in snapshot section {section}")
            }
            CatalogError::Corrupt { context } => write!(f, "corrupt snapshot: {context}"),
            CatalogError::TauExceedsFrozen { query, frozen } => write!(
                f,
                "query threshold {query} exceeds the frozen threshold {frozen}; \
                 refreeze the catalog with a larger tau"
            ),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for CatalogError {
    fn from(e: std::io::Error) -> CatalogError {
        CatalogError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        assert!(CatalogError::BadMagic {
            found: *b"NOTACATL"
        }
        .to_string()
        .contains("not a catalog snapshot"));
        assert!(CatalogError::UnsupportedVersion {
            found: 9,
            supported: 1
        }
        .to_string()
        .contains("version 9"));
        assert!(CatalogError::Truncated { context: "header" }
            .to_string()
            .contains("header"));
        assert!(CatalogError::ChecksumMismatch {
            section: "shard 2".into()
        }
        .to_string()
        .contains("shard 2"));
        assert!(CatalogError::TauExceedsFrozen {
            query: 5,
            frozen: 3
        }
        .to_string()
        .contains("exceeds"));
    }
}
