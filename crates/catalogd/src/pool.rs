//! A small per-address TCP connection pool.
//!
//! The scatter/gather client holds one connection per addressed node
//! for the duration of a join, and returns it afterwards; concurrent
//! joins (the load generator's worker threads) each check out their
//! own. Checkout order is LIFO — the most recently returned connection
//! is the most likely to still be warm.
//!
//! Dead connections never linger: a checkin with `healthy = false`
//! drops the socket, and an optional checkout-time [`Frame::Health`]
//! ping (`Frame` as in [`crate::wire::Frame`]) evicts connections whose
//! peer died while they sat idle — the pattern the pool test exercises
//! by killing the server between joins.

use crate::error::CatalogdError;
use crate::wire::Frame;
use std::collections::HashMap;
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// Pool tuning.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Dial timeout for new connections, in milliseconds.
    pub connect_timeout_ms: u64,
    /// Idle connections retained per address; surplus checkins close.
    pub max_idle_per_addr: usize,
    /// Whether checkout validates an idle connection with a
    /// [`Frame::Health`] round-trip before handing it out (evicting it
    /// and dialing fresh on failure). Costs one RTT; catches peers that
    /// died while the connection sat idle.
    pub ping_on_checkout: bool,
}

impl Default for PoolConfig {
    fn default() -> PoolConfig {
        PoolConfig {
            connect_timeout_ms: 1_000,
            max_idle_per_addr: 8,
            ping_on_checkout: false,
        }
    }
}

/// A pooled TCP connection pool keyed by socket address.
#[derive(Debug)]
pub struct ConnPool {
    config: PoolConfig,
    idle: Mutex<HashMap<SocketAddr, Vec<TcpStream>>>,
}

impl ConnPool {
    /// An empty pool.
    pub fn new(config: PoolConfig) -> ConnPool {
        ConnPool {
            config,
            idle: Mutex::new(HashMap::new()),
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> &PoolConfig {
        &self.config
    }

    /// Idle connections currently held for `addr`.
    pub fn idle_count(&self, addr: SocketAddr) -> usize {
        self.idle
            .lock()
            .expect("pool lock")
            .get(&addr)
            .map_or(0, Vec::len)
    }

    /// Checks out a connection to `addr`: the most recently returned
    /// idle one (optionally health-validated), or a fresh dial. The
    /// lock is never held across network I/O, so concurrent checkouts
    /// to the same address proceed in parallel.
    pub fn checkout(&self, addr: SocketAddr) -> Result<TcpStream, CatalogdError> {
        loop {
            let candidate = self
                .idle
                .lock()
                .expect("pool lock")
                .get_mut(&addr)
                .and_then(Vec::pop);
            let Some(mut stream) = candidate else {
                return self.dial(addr);
            };
            if !self.config.ping_on_checkout || ping(&mut stream).is_ok() {
                return Ok(stream);
            }
            // Dead while idle: evict (drop) and try the next candidate.
        }
    }

    /// Returns a connection to the pool. `healthy = false` (or a full
    /// idle list) drops it instead — the dead-connection eviction path.
    pub fn checkin(&self, addr: SocketAddr, stream: TcpStream, healthy: bool) {
        if !healthy {
            return; // dropped: dead connections never re-enter the pool
        }
        let mut idle = self.idle.lock().expect("pool lock");
        let list = idle.entry(addr).or_default();
        if list.len() < self.config.max_idle_per_addr {
            list.push(stream);
        }
    }

    /// Drops every idle connection to `addr` (e.g. after the node was
    /// observed dead — anything pooled predates the failure).
    pub fn evict_addr(&self, addr: SocketAddr) {
        self.idle.lock().expect("pool lock").remove(&addr);
    }

    fn dial(&self, addr: SocketAddr) -> Result<TcpStream, CatalogdError> {
        let stream = TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(self.config.connect_timeout_ms.max(1)),
        )
        .map_err(|e| CatalogdError::Io {
            kind: e.kind(),
            context: format!("connecting to {addr}"),
        })?;
        stream.set_nodelay(true).ok();
        Ok(stream)
    }
}

/// One blocking `Health` round-trip on `stream`.
fn ping(stream: &mut TcpStream) -> Result<(), CatalogdError> {
    stream
        .set_read_timeout(Some(Duration::from_millis(1_000)))
        .ok();
    Frame::Health.write_to(stream)?;
    match Frame::read_from(stream)? {
        Frame::HealthAck { .. } => Ok(()),
        other => Err(CatalogdError::Protocol {
            context: format!("expected HealthAck, got {other:?}"),
        }),
    }
}
