//! Near-duplicate detection in an XML product catalog — the C2C shopping
//! scenario from the paper's introduction: "the site could use the join
//! result to identify similar or near-duplicate items".
//!
//! We synthesize a catalog of XML item listings where several vendors
//! describe the same product with small variations (missing fields,
//! renamed tags, reordered-by-edit attributes), parse them with the
//! XML-ish parser, and cluster near-duplicates via PartSJ.
//!
//! ```bash
//! cargo run --release --example xml_dedup
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tree_similarity_join::prelude::*;

/// Renders one product listing as an XML string, with vendor-specific
/// noise controlled by `variant`. Each product has its own spec section,
/// so listings of *different* products are structurally far apart while
/// listings of the same product differ by a handful of edits.
fn listing(product: usize, variant: usize, rng: &mut StdRng) -> String {
    let names = ["mech-keyboard", "usb-dock", "laptop-stand", "hd-webcam"];
    let name = names[product % names.len()];
    let mut xml = String::new();
    xml.push_str("<item>");
    xml.push_str(&format!("<name>{name}</name>"));
    // Some vendors use <seller>, others <vendor>.
    if variant.is_multiple_of(2) {
        xml.push_str(&format!("<seller>shop{}</seller>", rng.gen_range(1..9)));
    } else {
        xml.push_str(&format!("<vendor>shop{}</vendor>", rng.gen_range(1..9)));
    }
    xml.push_str(&format!("<price>{}</price>", 40 + product * 13));
    xml.push_str("<specs>");
    match product % 4 {
        0 => {
            xml.push_str("<layout>ansi</layout><switches><brown/><red/></switches><keys>87</keys>")
        }
        1 => xml.push_str("<ports><usbc/><usbc/><hdmi/><ethernet/></ports><power>90w</power>"),
        2 => xml.push_str("<material>aluminum</material><angles><a15/><a30/><a45/></angles>"),
        _ => xml.push_str("<resolution>1080p</resolution><fov>78</fov><mic><stereo/></mic>"),
    }
    xml.push_str("<color>black</color>");
    if !variant.is_multiple_of(3) {
        xml.push_str("<warranty>2y</warranty>"); // sometimes omitted
    }
    xml.push_str("</specs>");
    if variant.is_multiple_of(4) {
        xml.push_str("<shipping><express/></shipping>");
    }
    xml.push_str("</item>");
    xml
}

fn main() {
    let mut rng = StdRng::seed_from_u64(2015);
    let mut labels = LabelInterner::new();
    let mut catalog: Vec<Tree> = Vec::new();
    let mut origin: Vec<usize> = Vec::new(); // ground-truth product id

    for product in 0..4 {
        for variant in 0..6 {
            let xml = listing(product, variant, &mut rng);
            let tree = parse_xmlish(&xml, &mut labels).expect("valid catalog xml");
            catalog.push(tree);
            origin.push(product);
        }
    }
    println!(
        "catalog: {} listings over {} products, {} distinct labels\n",
        catalog.len(),
        4,
        labels.len()
    );

    let tau = 4; // listings of the same product differ by a few fields
    let outcome = partsj_join(&catalog, tau);
    println!(
        "PartSJ at tau = {tau}: {} near-duplicate pairs \
         ({} candidates verified)",
        outcome.pairs.len(),
        outcome.stats.candidates
    );

    // Union-find over result pairs -> duplicate clusters.
    let mut parent: Vec<usize> = (0..catalog.len()).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for &(a, b) in &outcome.pairs {
        let (ra, rb) = (find(&mut parent, a as usize), find(&mut parent, b as usize));
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut clusters: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..catalog.len() {
        let root = find(&mut parent, i);
        clusters.entry(root).or_default().push(i);
    }

    println!("\nclusters of near-duplicate listings:");
    let mut pure = 0usize;
    let mut total_clusters = 0usize;
    for members in clusters.values().filter(|m| m.len() > 1) {
        total_clusters += 1;
        let products: std::collections::BTreeSet<usize> =
            members.iter().map(|&i| origin[i]).collect();
        let purity = if products.len() == 1 { "pure" } else { "mixed" };
        if products.len() == 1 {
            pure += 1;
        }
        println!("  listings {members:?} -> products {products:?} ({purity})");
    }
    println!("\n{pure}/{total_clusters} clusters map to a single true product");
}
