//! Shared fixtures for the catalogd integration suites.
//!
//! Each integration test binary compiles its own copy and uses a
//! subset, so unused-item warnings are expected noise here.
#![allow(dead_code)]

use partsj::PartSjConfig;
use tsj_catalog::Catalog;
use tsj_catalogd::interner_for;
use tsj_shard::ShardConfig;
use tsj_tree::{LabelInterner, Tree};

/// Freezes a deterministic demo catalog: `n` SwissProt-like trees at
/// threshold `tau` over `shards` shards. Returns the snapshot bytes and
/// the exact trees + interner it was frozen with, so tests can replay
/// the single-node reference join.
pub fn freeze_demo(
    n: usize,
    tau: u32,
    shards: usize,
    seed: u64,
) -> (Vec<u8>, Vec<Tree>, LabelInterner) {
    let trees = tsj_datagen::swissprot_like(n, seed);
    let labels = interner_for(&trees);
    let catalog = Catalog::freeze(
        trees.clone(),
        labels.clone(),
        tau,
        &PartSjConfig::default(),
        &ShardConfig::with_shards(shards),
    );
    (catalog.to_bytes(), trees, labels)
}

/// A probe batch with real matches against [`freeze_demo`]'s catalog:
/// a slice of fresh trees plus lightly edited revisions of catalog
/// entries.
pub fn probe_batch(
    catalog_trees: &[Tree],
    fresh: usize,
    edited: usize,
    seed: u64,
) -> (Vec<Tree>, LabelInterner) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut probes = tsj_datagen::swissprot_like(fresh, seed.wrapping_add(1));
    for original in catalog_trees.iter().step_by(7).take(edited) {
        let (revision, _) = tsj_datagen::random_edit_script(original, 1, &mut rng, 84);
        probes.push(revision);
    }
    let mut all = probes.clone();
    all.extend_from_slice(catalog_trees);
    // Intern over probes AND catalog so edited labels resolve too.
    let labels = interner_for(&all);
    (probes, labels)
}
