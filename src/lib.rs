//! # tree-similarity-join
//!
//! A complete reproduction of **“Scaling Similarity Joins over
//! Tree-Structured Data”** (Yu Tang, Yilun Cai, Nikos Mamoulis — PVLDB
//! 8(11), VLDB 2015) as a production-quality Rust workspace.
//!
//! Given a collection of rooted ordered labeled trees and a threshold `τ`,
//! the similarity self-join reports every pair within tree edit distance
//! (TED) `τ`. The paper's contribution — **PartSJ** — dynamically
//! partitions each tree's left-child right-sibling representation into
//! `δ = 2τ + 1` balanced subgraphs and indexes them in a two-layer
//! (postorder × label-twig) structure; a pair is only verified when one
//! tree contains a subgraph of the other.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`tree`] (`tsj-tree`) — trees, labels, parsers, LC-RS transform;
//! * [`ted`] (`tsj-ted`) — Zhang–Shasha / hybrid TED, string edit
//!   distance, lower bounds;
//! * [`baselines`] (`tsj-baselines`) — the paper's competitors `STR` and
//!   `SET`, plus the brute-force oracle;
//! * [`partsj`] — the partition-based join itself;
//! * [`datagen`] (`tsj-datagen`) — workload generators for all four
//!   evaluation datasets.
//!
//! ## Quickstart
//!
//! ```
//! use tree_similarity_join::prelude::*;
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{a{b}{c}}", "{a{b}{c}}", "{a{b}{z}}", "{x{y}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//!
//! // All pairs within TED 1:
//! let outcome = partsj_join(&trees, 1);
//! assert_eq!(outcome.pairs, vec![(0, 1), (0, 2), (1, 2)]);
//! ```
//!
//! `JoinOutcome::pairs` is deterministic: every pair is normalized to
//! `(i, j)` with `i < j`, sorted lexicographically and deduplicated, so
//! results can be compared directly across methods and runs.
//!
//! ## R×S (bipartite) joins
//!
//! Joining two *different* collections — a reference catalog against an
//! incoming feed, say — uses [`prelude::rs_join`] (an alias of
//! [`partsj::partsj_join_rs`]). Pairs are `(left index, right index)` in
//! their own index spaces, built with `JoinOutcome::new_bipartite`, so
//! components are never swapped:
//!
//! ```
//! use tree_similarity_join::prelude::*;
//!
//! let mut labels = LabelInterner::new();
//! let catalog: Vec<_> = ["{item{kbd}{price}}", "{item{dock}{ports}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//! let feed: Vec<_> = ["{item{dock}{plug}}", "{page{nav}{body}}", "{item{kbd}{price}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//!
//! let outcome = rs_join(&catalog, &feed, 1, &PartSjConfig::default());
//! // catalog[0] ≈ feed[2] (exact) and catalog[1] ≈ feed[0] (one rename).
//! assert_eq!(outcome.pairs, vec![(0, 2), (1, 0)]);
//! ```
//!
//! ## Configuring the verification filter chain
//!
//! Every entry point verifies candidates through one engine
//! ([`partsj::VerifyEngine`]): an ordered chain of cheap lower/upper
//! distance bounds in front of exact TED, configured per stage via
//! [`prelude::VerifyConfig`]. Disabling a stage never changes the result
//! pairs — every stage is a sound bound — it only shifts work onto the
//! exact TED fallback:
//!
//! ```
//! use tree_similarity_join::prelude::*;
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{a{b}{c}}", "{a{b}{c}}", "{a{b}{z}}", "{x{y}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//!
//! // Disable the banded traversal-string stage, keep the other three.
//! let config = PartSjConfig {
//!     verify: VerifyConfig {
//!         traversal: false,
//!         ..Default::default()
//!     },
//!     ..Default::default()
//! };
//! let ablated = partsj_join_with(&trees, 1, &config);
//! let full = partsj_join(&trees, 1);
//! assert_eq!(ablated.pairs, full.pairs); // stages never change results
//!
//! // `JoinStats` reports where candidates died, stage by stage.
//! for stage in &full.stats.stage_counts {
//!     println!("{}: {}", stage.stage, stage.count);
//! }
//! assert!(full.stats.early_accepts > 0); // duplicates skip exact TED
//! ```
//!
//! ## Sharding and streaming at scale
//!
//! The [`shard`] crate (`tsj-shard`) partitions the subgraph index across
//! shards keyed by container size class: `sharded_join` fans candidate
//! generation out over worker threads (bit-identical results to
//! `partsj_join`), `sharded_rs_join` does the same for R×S, and
//! `ShardedStreamingJoin` adds deletion and sliding-window eviction
//! (`EvictionPolicy`) on a dynamic index with tombstone compaction —
//! see `examples/streaming_monitor.rs`.
//!
//! ## Freezing a catalog
//!
//! When one side of the join is long-lived — a reference catalog probed
//! by many feeds — the [`catalog`] crate (`tsj-catalog`) freezes its
//! sharded index **once**, persists it as a versioned, checksummed
//! binary snapshot, and serves indexed-left joins against it at any
//! per-query threshold up to the frozen one. Loading a snapshot joins
//! bit-identically to `sharded_rs_join` over the original trees:
//!
//! ```
//! use tree_similarity_join::prelude::*;
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{item{kbd}{price}}", "{item{dock}{ports}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//! let catalog = Catalog::freeze(
//!     trees,
//!     labels,
//!     2, // frozen tau: the ceiling of every per-query threshold
//!     &PartSjConfig::default(),
//!     &ShardConfig::with_shards(2),
//! );
//! let served = Catalog::from_bytes(catalog.to_bytes()).unwrap(); // save/load round trip
//!
//! let mut labels = served.labels().clone();
//! let probe = parse_bracket("{item{dock}{plug}}", &mut labels).unwrap();
//! let outcome = served
//!     .join(&[probe], 1, &PartSjConfig::default(), &ShardConfig::default())
//!     .unwrap();
//! assert_eq!(outcome.pairs, vec![(1, 0)]);
//! ```
//!
//! See `examples/catalog_server.rs` for the full freeze → save → load →
//! serve loop, and the README's "Catalog service" section for the
//! snapshot format and the freeze-vs-rebuild trade-off.
//!
//! ## Cluster serving & fault tolerance
//!
//! The [`cluster`] crate (`tsj-cluster`) splits a frozen snapshot's
//! per-shard sections across N in-process catalog nodes (replication
//! factor R) behind a scatter/gather router:
//! [`prelude::Cluster::join`] is bit-identical to single-node
//! `Catalog::join` — pairs, candidate counts and stage counters — and
//! stays so under single-node loss with R ≥ 2 (failover). Every node
//! sits behind a deterministic fault injector ([`prelude::FaultPlan`]);
//! unrecoverable losses produce a typed [`prelude::Degraded`] coverage
//! report, never a silent wrong answer. See
//! `examples/cluster_failover.rs` and the README's "Cluster serving &
//! fault tolerance" section.
//!
//! ## Observability
//!
//! The [`obs`] crate (`tsj-obs`) instruments every layer above:
//! lock-free counters, gauges and log-scale latency histograms in a
//! global [`obs::MetricsRegistry`], structured trace spans on an
//! injectable clock, and two exporters (Prometheus text,
//! [`obs::export::to_json`]). It is on by default and configured with
//! [`prelude::ObsConfig`]; disabling it never changes any join result —
//! a property test pins bit-identical pairs, candidates and stage
//! counters across configurations. See the README's "Observability"
//! section and `experiments -- metrics`.
//!
//! ```
//! use tree_similarity_join::prelude::*;
//!
//! let mut labels = LabelInterner::new();
//! let trees: Vec<_> = ["{a{b}{c}}", "{a{b}{z}}"]
//!     .iter()
//!     .map(|s| parse_bracket(s, &mut labels).unwrap())
//!     .collect();
//! let _ = partsj_join(&trees, 1);
//! let snapshot = tree_similarity_join::obs::global().snapshot();
//! assert!(snapshot.counter("tsj_core_joins_total").unwrap_or(0) >= 1);
//! println!("{}", tree_similarity_join::obs::export::to_prometheus(&snapshot));
//! ```

pub use partsj;
pub use tsj_baselines as baselines;
pub use tsj_catalog as catalog;
pub use tsj_cluster as cluster;
pub use tsj_datagen as datagen;
pub use tsj_obs as obs;
pub use tsj_shard as shard;
pub use tsj_ted as ted;
pub use tsj_tree as tree;

/// The most common imports in one place.
pub mod prelude {
    /// The bipartite join under its natural name (alias of
    /// [`partsj::partsj_join_rs`]); outcomes are built with
    /// [`tsj_ted::JoinOutcome::new_bipartite`].
    pub use partsj::partsj_join_rs as rs_join;
    pub use partsj::{
        partsj_join, partsj_join_detailed, partsj_join_parallel, partsj_join_parallel_auto,
        partsj_join_rs, partsj_join_with, partsj_topk, partsj_topk_with, AdaptiveConfig,
        FilterStage, MatchSemantics, PartSjConfig, PartitionScheme, SearchIndex, StageKind,
        StageVerdict, StreamingJoin, TopKOutcome, TopKPair, VerifyConfig, VerifyData, VerifyEngine,
        WindowPolicy,
    };
    pub use tsj_baselines::{brute_force_join, set_join, str_join};
    pub use tsj_catalog::{Catalog, CatalogError, SnapshotReader};
    pub use tsj_cluster::{
        Cluster, ClusterConfig, ClusterError, ClusterJoin, Degraded, Fault, FaultInjector,
        FaultPlan, NodeMetricsSnapshot, RequestStats, RetryPolicy, SystemClock, Telemetry,
        Topology, VirtualClock,
    };
    pub use tsj_datagen::{
        collection_stats, sentiment_like, swissprot_like, synthetic, treebank_like, SyntheticParams,
    };
    pub use tsj_obs::{
        Clock, Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
        ObsConfig, Span, TraceBuffer, TraceEvent,
    };
    pub use tsj_shard::{
        sharded_join, sharded_rs_join, EvictionPolicy, ShardConfig, ShardMap, ShardedIndex,
        ShardedStreamingJoin,
    };
    pub use tsj_ted::{ted, JoinOutcome, JoinStats, StageCount, TedEngine};
    pub use tsj_tree::{
        parse_bracket, parse_xmlish, to_bracket, BinaryTree, Label, LabelInterner, Tree,
        TreeBuilder,
    };
}
