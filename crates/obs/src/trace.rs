//! Structured trace events: spans with begin/end stamps on an
//! injectable [`Clock`], collected in a bounded ring buffer.
//!
//! A [`Span`] is an RAII guard: it stamps its begin time at creation
//! and records a [`TraceEvent`] with the exact duration when dropped
//! (or explicitly [`Span::end`]ed, which also returns the duration).
//! Because stamps come from the same [`Clock`] abstraction the cluster
//! router sleeps on, a test driving a `VirtualClock` can assert span
//! durations to the millisecond — no wall-clock flakiness.
//!
//! The buffer is a fixed-capacity ring: once full, the oldest events
//! are dropped and counted, never blocking the recording path. The
//! whole buffer can be dumped as chrome-trace JSON
//! ([`TraceBuffer::to_chrome_json`]) and loaded into `about:tracing`
//! or Perfetto.

use crate::clock::Clock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name, e.g. `"catalog.freeze"`.
    pub name: String,
    /// Category (one per instrumented layer: `"core"`, `"shard"`, …).
    pub cat: &'static str,
    /// Begin stamp, in clock milliseconds.
    pub ts_ms: u64,
    /// Duration in clock milliseconds (0 for instant events).
    pub dur_ms: u64,
    /// Whether this was a span or an instant marker.
    pub kind: EventKind,
}

/// The shape of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A complete span with a duration (chrome-trace phase `X`).
    Span,
    /// A zero-duration marker (chrome-trace phase `i`).
    Instant,
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

/// A bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug)]
pub struct TraceBuffer {
    enabled: AtomicBool,
    ring: Mutex<Ring>,
}

impl TraceBuffer {
    /// An enabled buffer retaining at most `capacity` events (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            enabled: AtomicBool::new(true),
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Flips recording on or off; disabling makes spans no-ops.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Resizes the ring (clamped to at least 1), evicting oldest events
    /// if it shrinks.
    pub fn set_capacity(&self, capacity: usize) {
        let mut ring = self.ring.lock().expect("trace lock");
        ring.capacity = capacity.max(1);
        while ring.events.len() > ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
    }

    /// Begins a span stamped on `clock`; the event is recorded when the
    /// guard drops. No-op (but still returned) when disabled.
    pub fn span(
        self: &Arc<TraceBuffer>,
        clock: &Arc<dyn Clock>,
        name: impl Into<String>,
        cat: &'static str,
    ) -> Span {
        if !self.is_enabled() {
            return Span {
                buffer: None,
                clock: clock.clone(),
                name: String::new(),
                cat,
                begin_ms: 0,
            };
        }
        Span {
            buffer: Some(self.clone()),
            clock: clock.clone(),
            name: name.into(),
            cat,
            begin_ms: clock.now_ms(),
        }
    }

    /// Records a zero-duration marker stamped on `clock`.
    pub fn instant(&self, clock: &dyn Clock, name: impl Into<String>, cat: &'static str) {
        if !self.is_enabled() {
            return;
        }
        self.record(TraceEvent {
            name: name.into(),
            cat,
            ts_ms: clock.now_ms(),
            dur_ms: 0,
            kind: EventKind::Instant,
        });
    }

    /// Appends a pre-built event, evicting the oldest when full.
    pub fn record(&self, event: TraceEvent) {
        if !self.is_enabled() {
            return;
        }
        let mut ring = self.ring.lock().expect("trace lock");
        if ring.events.len() == ring.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event);
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .expect("trace lock")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().expect("trace lock").dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("trace lock").events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Empties the ring and resets the dropped count.
    pub fn clear(&self) {
        let mut ring = self.ring.lock().expect("trace lock");
        ring.events.clear();
        ring.dropped = 0;
    }

    /// The retained events as chrome-trace JSON (the
    /// `{"traceEvents": […]}` object format; timestamps in µs), loadable
    /// in `about:tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let ring = self.ring.lock().expect("trace lock");
        let mut out = String::from("{\"traceEvents\":[");
        for (i, event) in ring.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            crate::export::push_json_string(&mut out, &event.name);
            out.push_str(",\"cat\":");
            crate::export::push_json_string(&mut out, event.cat);
            match event.kind {
                EventKind::Span => {
                    out.push_str(&format!(
                        ",\"ph\":\"X\",\"ts\":{},\"dur\":{}",
                        event.ts_ms * 1000,
                        event.dur_ms * 1000
                    ));
                }
                EventKind::Instant => {
                    out.push_str(&format!(
                        ",\"ph\":\"i\",\"ts\":{},\"s\":\"g\"",
                        event.ts_ms * 1000
                    ));
                }
            }
            out.push_str(",\"pid\":0,\"tid\":0}");
        }
        out.push_str("]}");
        out
    }
}

/// An in-flight span; records its event when dropped.
#[derive(Debug)]
pub struct Span {
    /// `None` when tracing was disabled at creation: the guard is inert.
    buffer: Option<Arc<TraceBuffer>>,
    clock: Arc<dyn Clock>,
    name: String,
    cat: &'static str,
    begin_ms: u64,
}

impl Span {
    /// The begin stamp, in clock milliseconds.
    pub fn begin_ms(&self) -> u64 {
        self.begin_ms
    }

    /// Ends the span now and returns its duration in clock milliseconds
    /// (0 when tracing was disabled at creation).
    pub fn end(mut self) -> u64 {
        match self.buffer.take() {
            None => 0,
            Some(buffer) => {
                let dur_ms = self.clock.now_ms().saturating_sub(self.begin_ms);
                buffer.record(TraceEvent {
                    name: std::mem::take(&mut self.name),
                    cat: self.cat,
                    ts_ms: self.begin_ms,
                    dur_ms,
                    kind: EventKind::Span,
                });
                dur_ms
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(buffer) = self.buffer.take() {
            let dur_ms = self.clock.now_ms().saturating_sub(self.begin_ms);
            buffer.record(TraceEvent {
                name: std::mem::take(&mut self.name),
                cat: self.cat,
                ts_ms: self.begin_ms,
                dur_ms,
                kind: EventKind::Span,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn virtual_clock() -> Arc<dyn Clock> {
        Arc::new(VirtualClock::new())
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let buffer = TraceBuffer::new(2);
        let clock = virtual_clock();
        for name in ["a", "b", "c"] {
            buffer.instant(&*clock, name, "test");
        }
        let names: Vec<String> = buffer.events().into_iter().map(|e| e.name).collect();
        assert_eq!(names, ["b", "c"]);
        assert_eq!(buffer.dropped(), 1);
    }

    #[test]
    fn disabled_buffer_records_nothing() {
        let buffer = Arc::new(TraceBuffer::new(8));
        buffer.set_enabled(false);
        let clock = virtual_clock();
        let span = buffer.span(&clock, "quiet", "test");
        assert_eq!(span.end(), 0);
        buffer.instant(&*clock, "quiet", "test");
        assert!(buffer.is_empty());
    }

    #[test]
    fn chrome_json_is_structurally_sound() {
        let buffer = Arc::new(TraceBuffer::new(8));
        let clock: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let span = buffer.span(&clock, "work \"quoted\"", "test");
        clock.sleep_ms(3);
        drop(span);
        let json = buffer.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":3000"), "{json}");
        assert!(json.contains("work \\\"quoted\\\""));
    }
}
