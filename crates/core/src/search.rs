//! Similarity *search* over an indexed collection — the query type the
//! paper's introduction defines before generalizing to joins: "given a
//! query tree `Tq` and a distance threshold `τ`, a similarity search query
//! finds in the database all trees `Ti` such that `TED(Tq, Ti) ≤ τ`".
//!
//! [`SearchIndex::build`] partitions and indexes the collection once;
//! each [`SearchIndex::query`] then probes with the query tree's nodes
//! exactly like one iteration of Algorithm 1, so repeated queries amortize
//! the index construction — the offline-index regime the join
//! deliberately avoids but search workloads want.

use crate::config::PartSjConfig;
use crate::index::{LayerId, MatchCache, SubgraphIndex};
use crate::partition::cuts_for;
use crate::probe::{probe_tree_nodes, resolve_layers, ProbeCounters, ProbeScratch, StampSink};
use crate::subgraph::build_subgraphs;
use crate::verify::{ProbeVerify, VerifyData, VerifyEngine};
use tsj_ted::TreeIdx;
use tsj_tree::{FxHashMap, Tree};

/// A similarity-search index over a fixed collection.
///
/// ```
/// use partsj::{PartSjConfig, SearchIndex};
/// use tsj_tree::{parse_bracket, LabelInterner};
///
/// let mut labels = LabelInterner::new();
/// let collection: Vec<_> = ["{a{b}{c}}", "{a{b}{d}}", "{x{y{z}}}"]
///     .iter()
///     .map(|s| parse_bracket(s, &mut labels).unwrap())
///     .collect();
/// let index = SearchIndex::build(&collection, 1, PartSjConfig::default());
///
/// let query = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
/// let hits = index.query(&query);
/// assert_eq!(hits, vec![(0, 0), (1, 1)]); // (tree index, distance)
/// ```
#[derive(Debug)]
pub struct SearchIndex {
    tau: u32,
    config: PartSjConfig,
    index: SubgraphIndex,
    small_by_size: FxHashMap<u32, Vec<TreeIdx>>,
    data: Vec<VerifyData>,
}

/// Reusable scratch for [`SearchIndex::query_into`]: the O(collection)
/// candidate-dedup stamp array, the probe-tree preparation buffers, the
/// query's verification inputs and the probe loop's working lists. A
/// serving loop holding one of these (plus a [`VerifyEngine`]) makes
/// each query allocation-free in the collection size — dedup is by an
/// incrementing marker, so the stamp array is never re-cleared.
#[derive(Debug, Default)]
pub struct SearchScratch {
    stamp: Vec<TreeIdx>,
    next_marker: TreeIdx,
    candidates: Vec<TreeIdx>,
    layer_window: Vec<LayerId>,
    match_cache: MatchCache,
    probe: ProbeScratch,
    verify: ProbeVerify,
}

impl SearchScratch {
    /// An empty scratch; buffers are grown on first use.
    pub fn new() -> SearchScratch {
        SearchScratch::default()
    }

    /// Sizes the stamp array for a collection of `trees` trees and
    /// returns this query's dedup marker.
    fn begin_query(&mut self, trees: usize) -> TreeIdx {
        if self.stamp.len() != trees || self.next_marker == TreeIdx::MAX {
            // First use, a different index, or marker exhaustion: start
            // a fresh stamp generation.
            self.stamp.clear();
            self.stamp.resize(trees, TreeIdx::MAX);
            self.next_marker = 0;
        }
        let marker = self.next_marker;
        self.next_marker += 1;
        marker
    }
}

impl SearchIndex {
    /// Partitions and indexes every tree of `collection` for threshold
    /// `tau` queries.
    pub fn build(collection: &[Tree], tau: u32, config: PartSjConfig) -> SearchIndex {
        let delta = 2 * tau as usize + 1;
        let mut index = SubgraphIndex::new(tau, config.window);
        let mut small_by_size: FxHashMap<u32, Vec<TreeIdx>> = FxHashMap::default();
        let mut probe_scratch = ProbeScratch::new();
        for (i, tree) in collection.iter().enumerate() {
            let size = tree.len() as u32;
            if (size as usize) < delta {
                small_by_size.entry(size).or_default().push(i as TreeIdx);
                continue;
            }
            let (binary, posts) = probe_scratch.prepare(tree);
            let cuts = cuts_for(binary, delta, config.partitioning, i as u64);
            let subgraphs = build_subgraphs(binary, posts, &cuts, i as TreeIdx);
            index.insert_tree(size, subgraphs);
        }
        SearchIndex {
            tau,
            config,
            index,
            small_by_size,
            data: VerifyData::batch_for_config(collection, &config.verify),
        }
    }

    /// Number of indexed trees.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the collection is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The search threshold the index was built for.
    pub fn tau(&self) -> u32 {
        self.tau
    }

    /// Finds all collection trees within `τ` of `query`, as ascending
    /// `(tree index, exact distance)` pairs.
    pub fn query(&self, query: &Tree) -> Vec<(TreeIdx, u32)> {
        let mut engine = VerifyEngine::new(self.tau, &self.config);
        self.query_with_engine(query, &mut engine)
    }

    /// Like [`SearchIndex::query`] but reusing a caller-owned
    /// [`VerifyEngine`] (avoids repeated workspace allocation across many
    /// queries, and accumulates the per-stage counters). Reported
    /// distances stay exact: the engine's
    /// [`check_exact`](VerifyEngine::check_exact) only lets a stage
    /// short-circuit when its certificate is provably tight.
    ///
    /// # Panics
    /// Panics if the engine was built for a different threshold than the
    /// index — candidate generation prunes at the index's `τ`, so a
    /// mismatched engine would silently return wrong hit sets.
    pub fn query_with_engine(
        &self,
        query: &Tree,
        engine: &mut VerifyEngine,
    ) -> Vec<(TreeIdx, u32)> {
        let mut hits = Vec::new();
        self.query_into(query, engine, &mut SearchScratch::new(), &mut hits);
        hits
    }

    /// Like [`SearchIndex::query_with_engine`] but writing the hits into
    /// a caller-owned buffer (cleared first) and reusing a
    /// [`SearchScratch`] across queries — a steady-state serving loop
    /// then allocates nothing per query once every buffer has grown to
    /// its working size.
    ///
    /// # Panics
    /// Panics if the engine was built for a different threshold than the
    /// index — candidate generation prunes at the index's `τ`, so a
    /// mismatched engine would silently return wrong hit sets.
    pub fn query_into(
        &self,
        query: &Tree,
        engine: &mut VerifyEngine,
        scratch: &mut SearchScratch,
        out: &mut Vec<(TreeIdx, u32)>,
    ) {
        assert_eq!(
            engine.tau(),
            self.tau,
            "engine threshold must match the index threshold"
        );
        out.clear();
        let size_q = query.len() as u32;
        let lo = size_q.saturating_sub(self.tau).max(1);
        let hi = size_q + self.tau;
        let marker = scratch.begin_query(self.data.len());
        scratch.candidates.clear();

        for n in lo..=hi {
            if let Some(list) = self.small_by_size.get(&n) {
                for &j in list {
                    if scratch.stamp[j as usize] != marker {
                        scratch.stamp[j as usize] = marker;
                        scratch.candidates.push(j);
                    }
                }
            }
        }

        // The index is frozen after `build`: resolve the query's size
        // window to layer ids once, then probe per node.
        resolve_layers(&self.index, lo, hi, &mut scratch.layer_window);
        let mut counters = ProbeCounters::default();

        let (binary, posts) = scratch.probe.prepare(query);
        let mut sink = StampSink {
            stamp: &mut scratch.stamp,
            marker,
            candidates: &mut scratch.candidates,
        };
        probe_tree_nodes(
            &self.index,
            &scratch.layer_window,
            binary,
            posts,
            size_q,
            self.config.matching,
            &mut scratch.match_cache,
            &mut counters,
            &mut sink,
        );

        let data_q = scratch.verify.prepare(query, &self.config.verify);
        out.extend(scratch.candidates.iter().filter_map(|&j| {
            engine
                .check_exact(&self.data[j as usize], data_q)
                .map(|d| (j, d))
        }));
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tsj_ted::ted;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(labels: &mut LabelInterner, specs: &[&str]) -> Vec<Tree> {
        specs
            .iter()
            .map(|s| parse_bracket(s, labels).unwrap())
            .collect()
    }

    #[test]
    fn query_matches_linear_scan() {
        let mut labels = LabelInterner::new();
        let trees = collection(
            &mut labels,
            &[
                "{a{b}{c}}",
                "{a{b}{d}}",
                "{a{b{c}}{d}}",
                "{x{y{z}}}",
                "{a}",
                "{a{b}}",
            ],
        );
        for tau in 0..=3u32 {
            let index = SearchIndex::build(&trees, tau, PartSjConfig::default());
            for query_src in ["{a{b}{c}}", "{a{b}}", "{x{y}}", "{q{q}{q}{q}}"] {
                let query = parse_bracket(query_src, &mut labels).unwrap();
                let expected: Vec<(TreeIdx, u32)> = trees
                    .iter()
                    .enumerate()
                    .filter_map(|(i, t)| {
                        let d = ted(t, &query);
                        (d <= tau).then_some((i as TreeIdx, d))
                    })
                    .collect();
                assert_eq!(
                    index.query(&query),
                    expected,
                    "tau = {tau}, query = {query_src}"
                );
            }
        }
    }

    #[test]
    fn repeated_queries_reuse_engine() {
        let mut labels = LabelInterner::new();
        let trees = collection(&mut labels, &["{a{b}{c}}", "{a{b}{d}}"]);
        let index = SearchIndex::build(&trees, 1, PartSjConfig::default());
        let mut engine = VerifyEngine::new(1, &PartSjConfig::default());
        let q = parse_bracket("{a{b}{c}}", &mut labels).unwrap();
        let first = index.query_with_engine(&q, &mut engine);
        let second = index.query_with_engine(&q, &mut engine);
        assert_eq!(first, second);
        // Both hits are identical/one-rename pairs: the shape-accept
        // stage certifies their exact distances without any TED DP.
        assert_eq!(engine.ted_calls(), 0);
        assert_eq!(engine.early_accepts(), 4);
    }

    #[test]
    fn search_on_generated_collection() {
        let trees = tsj_datagen::synthetic(
            60,
            &tsj_datagen::SyntheticParams {
                avg_size: 25,
                ..Default::default()
            },
            31,
        );
        let tau = 2;
        let index = SearchIndex::build(&trees, tau, PartSjConfig::default());
        // Query with each collection member: must at least find itself.
        for (i, tree) in trees.iter().enumerate() {
            let hits = index.query(tree);
            assert!(
                hits.iter().any(|&(j, d)| j as usize == i && d == 0),
                "tree {i} must find itself"
            );
        }
    }

    #[test]
    fn empty_collection() {
        let index = SearchIndex::build(&[], 2, PartSjConfig::default());
        assert!(index.is_empty());
        let mut labels = LabelInterner::new();
        let q = parse_bracket("{a}", &mut labels).unwrap();
        assert!(index.query(&q).is_empty());
    }
}
