//! The observability switchboard.
//!
//! One [`ObsConfig`] governs the process-global registry and tracer
//! (see [`crate::configure`]). The default is **on**: metrics and trace
//! recording cost one relaxed atomic op per event, cheap enough to
//! leave running. `stage_timings` is the exception — it wraps every
//! verify-chain stage call in wall-clock stamps, which would dominate
//! the cheapest filters, so it defaults **off** and exists for targeted
//! profiling runs.
//!
//! Toggling any of these can never change join results: the disabled
//! paths run the same instrumented code against shared sink cells
//! (see [`crate::MetricsRegistry::disabled`]) — a contract the root
//! `obs_equivalence` suite property-tests across every entry point.

/// What the global observability layer records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Retain metric recordings in the global registry.
    pub metrics: bool,
    /// Retain trace events in the global ring buffer.
    pub trace: bool,
    /// Stamp per-stage wall-clock timings inside the verify chain
    /// (profiling only: the stamps cost more than the cheap stages).
    pub stage_timings: bool,
    /// Capacity of the global trace ring buffer.
    pub trace_capacity: usize,
}

impl ObsConfig {
    /// Everything a production run wants: metrics and trace on,
    /// per-stage timing stamps off.
    pub const ON: ObsConfig = ObsConfig {
        metrics: true,
        trace: true,
        stage_timings: false,
        trace_capacity: 4096,
    };

    /// Everything off: recordings land in shared sinks, snapshots are
    /// empty, spans are inert.
    pub const DISABLED: ObsConfig = ObsConfig {
        metrics: false,
        trace: false,
        stage_timings: false,
        trace_capacity: 1,
    };

    /// Everything on, including per-stage verify-chain timings.
    pub const PROFILE: ObsConfig = ObsConfig {
        metrics: true,
        trace: true,
        stage_timings: true,
        trace_capacity: 4096,
    };
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig::ON
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_on_with_stage_timings_off() {
        let config = ObsConfig::default();
        assert!(config.metrics && config.trace);
        assert!(!config.stage_timings);
        assert_eq!(config, ObsConfig::ON);
        let (disabled, profile) = (ObsConfig::DISABLED, ObsConfig::PROFILE);
        assert_eq!((disabled.metrics, disabled.trace), (false, false));
        assert_eq!(
            (profile.metrics, profile.stage_timings),
            (true, true),
            "profiling keeps metrics on and adds stage stamps"
        );
    }
}
