//! # tsj-datagen
//!
//! Synthetic tree collections for the reproduction of *Scaling Similarity
//! Joins over Tree-Structured Data* (VLDB 2015): the Zaki-style random
//! generator with Table 1's parameters, the decay-factor (`Dz`) mutation
//! model of Yang et al., and statistical simulators standing in for the
//! Swissprot / Treebank / Sentiment datasets (see the substitution notes in
//! DESIGN.md).

#![warn(missing_docs)]

pub mod datasets;
pub mod grow;
pub mod mother;
pub mod mutate;

pub use datasets::{
    collection_stats, sentiment_like, swissprot_like, synthetic, treebank_like, CollectionStats,
    SyntheticParams,
};
pub use grow::{grow_tree, ShapeProfile};
pub use mother::{mother_collection, MotherSampler};
pub use mutate::{mutate, random_edit, random_edit_script};
