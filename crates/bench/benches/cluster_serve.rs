//! What the scatter/gather cluster layer costs over single-node serving.
//!
//! Series (same frozen catalog, same probe batch):
//!
//! * `cluster_serve/single_node/*`   — `Catalog::join` straight off the
//!   loaded snapshot: the bit-identical baseline the router must match;
//! * `cluster_serve/cluster_n{N}_r{R}/*` — the same batch through
//!   `Cluster::join` at N nodes × replication R: planning + fan-out +
//!   gather overhead on top of the identical per-shard work;
//! * `cluster_serve/failover/*`      — N = 4, R = 2 with one node dead:
//!   what a degraded-but-covered cluster pays for routing around the
//!   loss.
//!
//! On the 1-CPU bench container the scatter threads serialize, so the
//! cluster numbers are an overhead ceiling, not a speedup claim —
//! re-record on multi-core for real fan-out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use partsj::PartSjConfig;
use tsj_catalog::Catalog;
use tsj_cluster::{Cluster, ClusterConfig};
use tsj_datagen::swissprot_like;
use tsj_shard::ShardConfig;
use tsj_tree::LabelInterner;

fn bench_cluster_serve(c: &mut Criterion) {
    let config = PartSjConfig::default();
    let tau = 2u32;
    let shard_cfg = ShardConfig {
        shards: 8,
        probe_threads: 1,
        verify_threads: 1,
        ..Default::default()
    };
    let n = 400usize;
    let left = swissprot_like(n, 2015);
    let probes = swissprot_like(50, 7);
    let catalog = Catalog::freeze(left, LabelInterner::new(), tau, &config, &shard_cfg);
    let bytes = catalog.to_bytes();

    let mut group = c.benchmark_group("cluster_serve");
    group.bench_with_input(BenchmarkId::new("single_node", n), &probes, |b, probes| {
        b.iter(|| {
            catalog
                .join(probes, tau, &config, &shard_cfg)
                .expect("tau within ceiling")
        })
    });
    for &(nodes, replication) in &[(1usize, 1usize), (4, 1), (4, 2)] {
        let mut cluster =
            Cluster::from_snapshot(bytes.clone(), &ClusterConfig::new(nodes, replication))
                .expect("well-formed snapshot");
        group.bench_with_input(
            BenchmarkId::new(format!("cluster_n{nodes}_r{replication}"), n),
            &probes,
            |b, probes| {
                b.iter(|| {
                    let served = cluster.join(probes, tau, &config).expect("healthy join");
                    assert!(served.is_complete());
                    served
                })
            },
        );
    }
    let mut degraded =
        Cluster::from_snapshot(bytes, &ClusterConfig::new(4, 2)).expect("well-formed snapshot");
    degraded.kill_node(0);
    group.bench_with_input(BenchmarkId::new("failover", n), &probes, |b, probes| {
        b.iter(|| {
            let served = degraded.join(probes, tau, &config).expect("failover join");
            assert!(served.is_complete());
            served
        })
    });
    group.finish();
}

criterion_group!(benches, bench_cluster_serve);
criterion_main!(benches);
