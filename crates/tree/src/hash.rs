//! Fast, non-cryptographic hashing for interned ids and packed keys.
//!
//! The similarity-join inner loops probe hash maps keyed by small integers
//! (tree sizes, postorder numbers, packed label twigs). The standard library
//! default hasher (SipHash 1-3) is collision-resistant but slow for such
//! keys, so we provide a local implementation of the well-known `Fx` hash
//! (the multiply-xor hash used by the Rust compiler) rather than pulling in
//! an external crate for ~30 lines of code.
//!
//! Do **not** use these maps with attacker-controlled keys; there is no
//! HashDoS protection.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The golden-ratio-derived multiplier used by the Fx hash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, low-quality hasher for small integer-like keys.
///
/// Identical in spirit to `rustc_hash::FxHasher`: each written word is
/// rotated into the state and multiplied by a fixed odd constant.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, i: u64) {
        self.hash = (self.hash.rotate_left(5) ^ i).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast Fx hash. Use for trusted small keys only.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast Fx hash. Use for trusted small keys only.
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_differently() {
        let mut seen = HashSet::new();
        for key in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(key);
            seen.insert(h.finish());
        }
        // Fx is not perfect, but small consecutive integers must not collide.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn map_round_trip() {
        let mut map: FxHashMap<u32, &str> = FxHashMap::default();
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        assert_eq!(map.get(&2), Some(&"two"));
        assert_eq!(map.get(&3), None);
    }

    #[test]
    fn byte_writes_consistent_with_word_writes_for_equality() {
        // Hashing the same logical bytes twice must agree (determinism).
        let mut a = FxHasher::default();
        a.write(b"hello world, tree joins");
        let mut b = FxHasher::default();
        b.write(b"hello world, tree joins");
        assert_eq!(a.finish(), b.finish());
    }
}
