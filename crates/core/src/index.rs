//! The on-the-fly two-layer subgraph index (§3.4).
//!
//! Subgraphs are first grouped by their container tree's size `n` (the
//! inverted size index `I_n` of Algorithm 1), then by *postorder group*
//! (layer 1) and finally by *label twig* (layer 2):
//!
//! * **Postorder layer.** Subgraph `s_k` with window half-width `∆′`
//!   (policy-dependent, see `WindowPolicy`) is registered under every
//!   position key in `[pos_k − ∆′, pos_k + ∆′]`, where `pos_k` is the
//!   subgraph root's *general-tree* postorder position — as a suffix
//!   (`n − p_k`, edit-stable and provably sound) or absolute (`p_k`, the
//!   paper's literal text) coordinate. A probe node with position `p`
//!   reads exactly one group: key `p`.
//! * **Label twig layer.** Within a postorder group, subgraphs are hashed
//!   by their packed root twig `(ℓ, ℓ_left, ℓ_right)` (`ε` for bridges and
//!   absences). A probe with twig `(ℓ, ℓ_l, ℓ_r)` inspects up to four
//!   groups: `ℓℓ_lℓ_r`, `ℓℓ_lε`, `ℓεℓ_r`, `ℓεε` — the keys whose
//!   subgraphs can still embed at the node.
//!
//! The index owns the subgraph pool; groups store `u32` handles into it.

use crate::config::WindowPolicy;
use crate::subgraph::Subgraph;
use tsj_tree::{pack_twig, FxHashMap, Label};

/// Handle into the index's subgraph pool.
pub type SubgraphHandle = u32;

#[derive(Debug, Default)]
struct TwigLayer {
    groups: FxHashMap<u64, Vec<SubgraphHandle>>,
}

#[derive(Debug, Default)]
struct PostorderLayer {
    groups: FxHashMap<u32, TwigLayer>,
}

/// Two-layer inverted index over the subgraphs of already-processed trees.
#[derive(Debug)]
pub struct SubgraphIndex {
    tau: u32,
    window: WindowPolicy,
    /// `I_n`: one postorder layer per container tree size.
    by_size: FxHashMap<u32, PostorderLayer>,
    pool: Vec<Subgraph>,
    /// Total group registrations (a subgraph appears in `2∆′ + 1` groups).
    registrations: u64,
}

impl SubgraphIndex {
    /// Creates an empty index for threshold `tau` under `window`.
    pub fn new(tau: u32, window: WindowPolicy) -> SubgraphIndex {
        SubgraphIndex {
            tau,
            window,
            by_size: FxHashMap::default(),
            pool: Vec::new(),
            registrations: 0,
        }
    }

    /// The position key of a subgraph under the active policy.
    fn subgraph_position(&self, sg: &Subgraph) -> u32 {
        match self.window {
            WindowPolicy::PaperAbsolute => sg.root_post,
            WindowPolicy::Tight | WindowPolicy::Safe => sg.suffix,
        }
    }

    /// The position key of a probe node with 1-based *general-tree*
    /// postorder `p` in a probing tree of size `probe_size`.
    pub fn probe_position(&self, p: u32, probe_size: u32) -> u32 {
        match self.window {
            WindowPolicy::PaperAbsolute => p,
            WindowPolicy::Tight | WindowPolicy::Safe => probe_size - p,
        }
    }

    /// Window half-width `∆′` for subgraph ordinal `k` (1-based).
    fn half_width(&self, ordinal: u16) -> u32 {
        match self.window {
            WindowPolicy::Safe => self.tau,
            WindowPolicy::Tight | WindowPolicy::PaperAbsolute => {
                self.tau - (ordinal as u32 / 2).min(self.tau)
            }
        }
    }

    /// Inserts all subgraphs of a processed tree of size `tree_size`.
    pub fn insert_tree(&mut self, tree_size: u32, subgraphs: Vec<Subgraph>) {
        for sg in subgraphs {
            let position = self.subgraph_position(&sg);
            let dw = self.half_width(sg.ordinal);
            let twig = sg.twig;
            let handle = self.pool.len() as SubgraphHandle;
            self.pool.push(sg);
            let layer = self.by_size.entry(tree_size).or_default();
            let lo = position.saturating_sub(dw);
            for key in lo..=position + dw {
                layer
                    .groups
                    .entry(key)
                    .or_default()
                    .groups
                    .entry(twig)
                    .or_default()
                    .push(handle);
                self.registrations += 1;
            }
        }
    }

    /// Probes for subgraphs of trees with exactly `tree_size` nodes that
    /// may embed at a node with postorder position key `position` (already
    /// converted via [`SubgraphIndex::probe_position`]) and twig labels
    /// `(label, left, right)` (`ε` for missing children).
    ///
    /// Calls `visit` for every handle in the up-to-four twig groups.
    pub fn probe<F: FnMut(SubgraphHandle)>(
        &self,
        tree_size: u32,
        position: u32,
        label: Label,
        left: Label,
        right: Label,
        mut visit: F,
    ) {
        let Some(layer) = self.by_size.get(&tree_size) else {
            return;
        };
        let Some(group) = layer.groups.get(&position) else {
            return;
        };
        let keys = [
            pack_twig(label, left, right),
            pack_twig(label, left, Label::EPSILON),
            pack_twig(label, Label::EPSILON, right),
            pack_twig(label, Label::EPSILON, Label::EPSILON),
        ];
        for (i, &key) in keys.iter().enumerate() {
            // Skip duplicate keys when the node itself has ε children.
            if keys[..i].contains(&key) {
                continue;
            }
            if let Some(handles) = group.groups.get(&key) {
                for &h in handles {
                    visit(h);
                }
            }
        }
    }

    /// Resolves a handle to its subgraph.
    #[inline]
    pub fn subgraph(&self, handle: SubgraphHandle) -> &Subgraph {
        &self.pool[handle as usize]
    }

    /// Number of subgraphs stored.
    pub fn len(&self) -> usize {
        self.pool.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Total `(position, twig)` group registrations.
    pub fn registrations(&self) -> u64 {
        self.registrations
    }

    /// The configured window policy.
    pub fn window(&self) -> WindowPolicy {
        self.window
    }

    /// `∆′` as exposed for diagnostics and tests.
    pub fn window_half_width(&self, ordinal: u16) -> u32 {
        self.half_width(ordinal)
    }

    /// Position key a subgraph is centered on (diagnostics and tests).
    pub fn position_of(&self, sg: &Subgraph) -> u32 {
        self.subgraph_position(sg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{max_min_size, select_cuts};
    use crate::subgraph::build_subgraphs;
    use tsj_tree::{parse_bracket, BinaryTree, LabelInterner};

    fn subgraphs_of(
        input: &str,
        tau: u32,
    ) -> (tsj_tree::Tree, BinaryTree, Vec<Subgraph>, LabelInterner) {
        let mut labels = LabelInterner::new();
        let tree = parse_bracket(input, &mut labels).unwrap();
        let binary = BinaryTree::from_tree(&tree);
        let delta = 2 * tau as usize + 1;
        let gamma = max_min_size(&binary, delta);
        let cuts = select_cuts(&binary, delta, gamma);
        let sgs = build_subgraphs(&binary, &tree.postorder_numbers(), &cuts, 0);
        (tree, binary, sgs, labels)
    }

    #[test]
    fn window_half_widths() {
        let index = SubgraphIndex::new(2, WindowPolicy::Tight);
        // ∆′ = τ − ⌊k/2⌋ with τ = 2: k=1 → 2, k=2 → 1, k=3 → 1, k=4 → 0, k=5 → 0.
        assert_eq!(index.window_half_width(1), 2);
        assert_eq!(index.window_half_width(2), 1);
        assert_eq!(index.window_half_width(3), 1);
        assert_eq!(index.window_half_width(4), 0);
        assert_eq!(index.window_half_width(5), 0);
        let safe = SubgraphIndex::new(2, WindowPolicy::Safe);
        for k in 1..=5 {
            assert_eq!(safe.window_half_width(k), 2);
        }
    }

    #[test]
    fn insert_and_probe_own_tree() {
        let tau = 1;
        let (tree, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let general_post = tree.postorder_numbers();
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Tight);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs.clone());
        assert_eq!(index.len(), 3);

        // Probing each subgraph root with its own twig must surface it.
        for sg in &sgs {
            let root = sg.root;
            let left = binary
                .left(root)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let right = binary
                .right(root)
                .map_or(Label::EPSILON, |c| binary.label(c));
            let position = index.probe_position(general_post[root.index()], n);
            let mut found = false;
            index.probe(n, position, binary.label(root), left, right, |h| {
                if index.subgraph(h).ordinal == sg.ordinal {
                    found = true;
                }
            });
            assert!(found, "subgraph {} not found by self-probe", sg.ordinal);
        }
    }

    #[test]
    fn probe_wrong_size_is_empty() {
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Tight);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs);
        let mut count = 0;
        index.probe(
            n + 5,
            0,
            Label::from_raw(1),
            Label::EPSILON,
            Label::EPSILON,
            |_| count += 1,
        );
        assert_eq!(count, 0);
    }

    #[test]
    fn registrations_count_window_entries() {
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        // k=1: ∆′=1 → 3 entries; k=2: ∆′=0 → 1; k=3: ∆′=0 → 1. Total 5.
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Tight);
        index.insert_tree(binary.len() as u32, sgs.clone());
        assert_eq!(index.registrations(), 5);

        let mut safe = SubgraphIndex::new(tau, WindowPolicy::Safe);
        safe.insert_tree(binary.len() as u32, sgs);
        // Safe: every subgraph gets 2τ+1 = 3 entries (minus clamping at 0).
        assert!(safe.registrations() >= 7, "{}", safe.registrations());
    }

    #[test]
    fn twig_key_dedup_probes_each_group_once() {
        // A probe with ε children must not visit the same group twice.
        let tau = 0;
        let (_, binary, sgs, _) = subgraphs_of("{a}", tau);
        let mut index = SubgraphIndex::new(tau, WindowPolicy::Tight);
        let n = binary.len() as u32;
        index.insert_tree(n, sgs);
        let mut visits = 0;
        let root_label = binary.label(binary.root());
        index.probe(n, 0, root_label, Label::EPSILON, Label::EPSILON, |_| {
            visits += 1
        });
        assert_eq!(visits, 1);
    }

    #[test]
    fn paper_absolute_uses_raw_postorder() {
        let tau = 1;
        let (_, binary, sgs, _) = subgraphs_of("{a{b{c}{d}}{e{f}{g}}{h{i}{j}}}", tau);
        let index = SubgraphIndex::new(tau, WindowPolicy::PaperAbsolute);
        for sg in &sgs {
            assert_eq!(index.position_of(sg), sg.root_post);
        }
        assert_eq!(index.probe_position(7, binary.len() as u32), 7);
        let tight = SubgraphIndex::new(tau, WindowPolicy::Tight);
        for sg in &sgs {
            assert_eq!(tight.position_of(sg), sg.suffix);
        }
    }
}
