//! The cross-the-wire bit-identity contract: a TCP scatter/gather join
//! through real sockets must produce **exactly** what the in-process
//! cluster and the single-node catalog produce — pairs, candidate
//! counts, and every filter-stage counter — across node counts,
//! replication factors and thresholds, including after killing a real
//! server process at replication 2.

mod common;

use partsj::PartSjConfig;
use std::io::BufRead;
use std::net::SocketAddr;
use tsj_catalog::Catalog;
use tsj_catalogd::{Catalogd, ClientConfig, ClusterClient, RunningServer, ServerConfig};
use tsj_cluster::{Cluster, ClusterConfig};
use tsj_shard::ShardConfig;
use tsj_ted::JoinOutcome;

const SHARDS: usize = 8;
const FROZEN_TAU: u32 = 3;

/// Stage counters as comparable values (stage names on the TCP side are
/// re-interned `&'static str`s, so compare by string).
fn stages(outcome: &JoinOutcome) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = outcome
        .stats
        .stage_counts
        .iter()
        .map(|sc| (sc.stage.to_string(), sc.count))
        .collect();
    v.sort();
    v
}

/// Asserts everything deterministic about two outcomes is identical
/// (durations are wall-clock and excluded by design).
fn assert_bit_identical(got: &JoinOutcome, want: &JoinOutcome, context: &str) {
    assert_eq!(got.pairs, want.pairs, "{context}: pairs");
    assert_eq!(
        got.stats.candidates, want.stats.candidates,
        "{context}: candidates"
    );
    assert_eq!(
        got.stats.pairs_examined, want.stats.pairs_examined,
        "{context}: pairs_examined"
    );
    assert_eq!(got.stats.results, want.stats.results, "{context}: results");
    assert_eq!(
        got.stats.ted_calls, want.stats.ted_calls,
        "{context}: ted_calls"
    );
    assert_eq!(
        got.stats.prefilter_skips, want.stats.prefilter_skips,
        "{context}: prefilter_skips"
    );
    assert_eq!(
        got.stats.early_accepts, want.stats.early_accepts,
        "{context}: early_accepts"
    );
    assert_eq!(stages(got), stages(want), "{context}: stage counters");
}

fn spawn_node_set(snapshot: &[u8], nodes: usize, replication: usize) -> Vec<RunningServer> {
    (0..nodes)
        .map(|n| {
            Catalogd::bind(
                snapshot.to_vec(),
                &ServerConfig::new(n, nodes, replication),
                "127.0.0.1:0",
            )
            .expect("bind")
            .spawn()
            .expect("spawn")
        })
        .collect()
}

/// The full sweep: nodes × replication × tau, every TCP join held
/// against both the single-node catalog and the in-process cluster.
#[test]
fn tcp_join_is_bit_identical_across_the_sweep() {
    let (snapshot, catalog_trees, _) = common::freeze_demo(150, FROZEN_TAU, SHARDS, 2015);
    let (probes, probe_labels) = common::probe_batch(&catalog_trees, 20, 15, 77);
    let config = PartSjConfig::default();
    let catalog = Catalog::from_bytes(snapshot.clone()).expect("reference catalog");

    for &tau in &[0u32, 1, 3] {
        let reference = catalog
            .join(&probes, tau, &config, &ShardConfig::default())
            .expect("single-node reference");
        for &nodes in &[1usize, 2, 4] {
            for &replication in &[1usize, 2] {
                let context = format!("nodes={nodes} R={replication} tau={tau}");

                // The in-process cluster: the PR 7 contract.
                let mut cluster = Cluster::from_snapshot(
                    snapshot.clone(),
                    &ClusterConfig::new(nodes, replication),
                )
                .expect("cluster");
                let in_process = cluster.join(&probes, tau, &config).expect("cluster join");
                assert!(in_process.is_complete(), "{context}: in-process complete");
                assert_bit_identical(&in_process.outcome, &reference, &context);

                // The same snapshot over real sockets.
                let servers = spawn_node_set(&snapshot, nodes, replication);
                let addrs: Vec<SocketAddr> = servers.iter().map(RunningServer::addr).collect();
                let mut client =
                    ClusterClient::connect(&addrs, ClientConfig::default()).expect("connect");
                let over_tcp = client.join(&probes, &probe_labels, tau).expect("tcp join");
                assert!(over_tcp.is_complete(), "{context}: tcp complete");
                assert_bit_identical(&over_tcp.outcome, &reference, &format!("{context} (tcp)"));
                assert_eq!(
                    over_tcp.telemetry.requests, in_process.telemetry.requests,
                    "{context}: same scatter plan"
                );
            }
        }
    }
}

/// Requests above the frozen threshold are refused client-side, exactly
/// like the in-process cluster.
#[test]
fn tau_above_frozen_is_refused() {
    let (snapshot, catalog_trees, _) = common::freeze_demo(40, 1, 4, 5);
    let (probes, probe_labels) = common::probe_batch(&catalog_trees, 4, 2, 9);
    let servers = spawn_node_set(&snapshot, 2, 1);
    let addrs: Vec<SocketAddr> = servers.iter().map(RunningServer::addr).collect();
    let mut client = ClusterClient::connect(&addrs, ClientConfig::default()).expect("connect");
    assert!(client.join(&probes, &probe_labels, 2).is_err());
}

/// Spawns a real `catalogd` server process and reads its bound address
/// off stdout (`--addr 127.0.0.1:0` lets the OS pick the port).
fn spawn_process(
    snapshot_path: &std::path::Path,
    node: usize,
    nodes: usize,
) -> (std::process::Child, SocketAddr) {
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_catalogd"))
        .args([
            "serve",
            "--snapshot",
            snapshot_path.to_str().unwrap(),
            "--node",
            &node.to_string(),
            "--nodes",
            &nodes.to_string(),
            "--replication",
            "2",
            "--addr",
            "127.0.0.1:0",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("spawn catalogd process");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read serve banner");
    // "catalogd: node N serving on ADDR (...)"
    let addr = line
        .split("serving on ")
        .nth(1)
        .and_then(|rest| rest.split_whitespace().next())
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .parse()
        .expect("bound address");
    (child, addr)
}

/// Kill a real server process mid-workload at replication 2: the router
/// fails over to the surviving replica and the answer stays
/// bit-identical. Restart the node and `reconnect` restores full
/// health.
#[test]
fn killed_process_fails_over_bit_identically() {
    let (snapshot, catalog_trees, _) = common::freeze_demo(120, 2, SHARDS, 2015);
    let (probes, probe_labels) = common::probe_batch(&catalog_trees, 12, 10, 41);
    let config = PartSjConfig::default();
    let reference = Catalog::from_bytes(snapshot.clone())
        .expect("reference catalog")
        .join(&probes, 2, &config, &ShardConfig::default())
        .expect("reference join");

    let dir = std::env::temp_dir().join(format!("tsj-catalogd-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot_path = dir.join("kill.snap");
    std::fs::write(&snapshot_path, &snapshot).expect("write snapshot");

    let (mut child0, addr0) = spawn_process(&snapshot_path, 0, 2);
    let (mut child1, addr1) = spawn_process(&snapshot_path, 1, 2);
    let addrs = vec![addr0, addr1];

    let mut client = ClusterClient::connect(&addrs, ClientConfig::default()).expect("connect");
    let healthy = client
        .join(&probes, &probe_labels, 2)
        .expect("healthy join");
    assert!(healthy.is_complete());
    assert_bit_identical(&healthy.outcome, &reference, "both processes up");

    // SIGKILL node 0 — no shutdown frame, no flush, a real crash.
    child0.kill().expect("kill node 0");
    child0.wait().expect("reap node 0");

    let failed_over = client
        .join(&probes, &probe_labels, 2)
        .expect("failover join");
    assert!(
        failed_over.is_complete(),
        "R=2 covers every shard after one process dies"
    );
    assert_bit_identical(&failed_over.outcome, &reference, "node 0 killed");
    assert!(!client.is_alive(0), "client observed the death");
    assert!(
        failed_over.telemetry.failovers > 0,
        "failover was exercised"
    );

    // Restart the dead node (same id, new port) and reconnect.
    let (mut restarted, new_addr0) = spawn_process(&snapshot_path, 0, 2);
    // The client set was built for addr0; a restarted process on a new
    // port is a new address — rebuild the client, the normal operator
    // flow in docs/OPERATIONS.md.
    let mut client = ClusterClient::connect(&[new_addr0, addr1], ClientConfig::default())
        .expect("reconnect after restart");
    let healed = client.join(&probes, &probe_labels, 2).expect("healed join");
    assert!(healed.is_complete());
    assert_bit_identical(&healed.outcome, &reference, "node 0 restarted");

    // Clean shutdown via the protocol, then reap both.
    client.shutdown_node(0).expect("shutdown restarted node");
    client.shutdown_node(1).expect("shutdown node 1");
    restarted.wait().expect("reap restarted node");
    child1.wait().expect("reap node 1");
    std::fs::remove_dir_all(&dir).ok();
}

/// Killing one process at replication 1 degrades — typed, never silent,
/// and recovery is reconnect-after-restart.
#[test]
fn killed_process_at_r1_degrades_then_recovers() {
    let (snapshot, catalog_trees, _) = common::freeze_demo(80, 1, 4, 2015);
    let (probes, probe_labels) = common::probe_batch(&catalog_trees, 8, 8, 13);
    let config = PartSjConfig::default();
    let reference = Catalog::from_bytes(snapshot.clone())
        .expect("reference catalog")
        .join(&probes, 1, &config, &ShardConfig::default())
        .expect("reference join");

    let dir = std::env::temp_dir().join(format!("tsj-catalogd-test-r1-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let snapshot_path = dir.join("r1.snap");
    std::fs::write(&snapshot_path, &snapshot).expect("write snapshot");

    let spawn_r1 = |node: usize| {
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_catalogd"))
            .args([
                "serve",
                "--snapshot",
                snapshot_path.to_str().unwrap(),
                "--node",
                &node.to_string(),
                "--nodes",
                "2",
                "--replication",
                "1",
                "--addr",
                "127.0.0.1:0",
            ])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .expect("spawn");
        let stdout = child.stdout.take().expect("stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("banner");
        let addr: SocketAddr = line
            .split("serving on ")
            .nth(1)
            .and_then(|rest| rest.split_whitespace().next())
            .expect("addr in banner")
            .parse()
            .expect("addr parses");
        (child, addr)
    };

    let (mut child0, addr0) = spawn_r1(0);
    let (mut child1, addr1) = spawn_r1(1);
    let mut client =
        ClusterClient::connect(&[addr0, addr1], ClientConfig::default()).expect("connect");
    let healthy = client
        .join(&probes, &probe_labels, 1)
        .expect("healthy join");
    assert!(healthy.is_complete());
    assert_bit_identical(&healthy.outcome, &reference, "R=1 both up");

    child0.kill().expect("kill node 0");
    child0.wait().expect("reap node 0");

    let degraded = client
        .join(&probes, &probe_labels, 1)
        .expect("degraded join");
    let report = degraded.degraded.as_ref().expect("typed degradation");
    assert!(!report.lost_shards.is_empty());
    // Degradation only omits: every pair it still proves is a true pair.
    for pair in &degraded.outcome.pairs {
        assert!(reference.pairs.contains(pair), "no invented pairs");
    }

    let (mut restarted, new_addr0) = spawn_r1(0);
    let mut client =
        ClusterClient::connect(&[new_addr0, addr1], ClientConfig::default()).expect("reconnect");
    let healed = client.join(&probes, &probe_labels, 1).expect("healed join");
    assert!(healed.is_complete());
    assert_bit_identical(&healed.outcome, &reference, "R=1 restarted");

    client.shutdown_node(0).expect("shutdown node 0");
    client.shutdown_node(1).expect("shutdown node 1");
    restarted.wait().expect("reap restarted");
    child1.wait().expect("reap node 1");
    std::fs::remove_dir_all(&dir).ok();
}
