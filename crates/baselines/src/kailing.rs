//! The `KAI` histogram baseline (Kailing et al., reference \[16\] of the
//! paper): prune a pair when any of the cheap histogram lower bounds —
//! size, label multiset, degree multiset — exceeds `τ`.
//!
//! The paper discusses this family in §2/§5 ("three lower bounds for TED,
//! based on some simple statistics") but does not carry it into the
//! evaluation because its pruning is weaker than STR/SET; it is included
//! here as an extension baseline so the trade-off can be measured.

use crate::common::filter_verify_join;
use tsj_ted::{degree_bound, degree_histogram, histogram_bound, label_histogram, JoinOutcome};
use tsj_tree::{Label, Tree};

/// Per-tree histograms for the KAI filter.
#[derive(Debug, Clone)]
pub struct Histograms {
    labels: Vec<Label>,
    degrees: Vec<u32>,
}

impl Histograms {
    /// Extracts the label and degree histograms of `tree`.
    pub fn new(tree: &Tree) -> Histograms {
        Histograms {
            labels: label_histogram(tree),
            degrees: degree_histogram(tree),
        }
    }

    /// The combined histogram lower bound against `other`.
    pub fn bound(&self, other: &Histograms) -> u32 {
        histogram_bound(&self.labels, &other.labels)
            .max(degree_bound(&self.degrees, &other.degrees))
    }
}

/// Evaluates the KAI similarity self-join at threshold `tau`.
pub fn kailing_join(trees: &[Tree], tau: u32) -> JoinOutcome {
    filter_verify_join(
        trees,
        tau,
        || trees.iter().map(Histograms::new).collect::<Vec<_>>(),
        |hists, i, j| hists[i].bound(&hists[j]) <= tau,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bruteforce::brute_force_join;
    use tsj_tree::{parse_bracket, LabelInterner};

    fn collection(specs: &[&str]) -> Vec<Tree> {
        let mut labels = LabelInterner::new();
        specs
            .iter()
            .map(|s| parse_bracket(s, &mut labels).unwrap())
            .collect()
    }

    #[test]
    fn kai_join_is_exact() {
        let trees = collection(&[
            "{a{b}{c}}",
            "{a{b}{c}}",
            "{a{b}{z}}",
            "{a{b{c}}}",
            "{q{w}{e}{r}{t}}",
        ]);
        for tau in 0..=3u32 {
            let expected = brute_force_join(&trees, tau);
            let outcome = kailing_join(&trees, tau);
            assert_eq!(outcome.pairs, expected.pairs, "tau = {tau}");
        }
    }

    #[test]
    fn kai_filter_prunes_label_disjoint_pairs() {
        let trees = collection(&["{a{b}{c}{d}}", "{w{x}{y}{z}}"]);
        let outcome = kailing_join(&trees, 1);
        assert!(outcome.pairs.is_empty());
        // The label bound alone (4 disjoint labels → L1 = 8 → bound 4)
        // prunes the pair without a TED call.
        assert_eq!(outcome.stats.ted_calls, 0);
    }

    #[test]
    fn kai_filter_prunes_shape_mismatches() {
        // Same labels, very different shape: star vs path.
        let trees = collection(&["{r{a}{b}{c}{d}{e}}", "{r{a{b{c{d{e}}}}}}"]);
        let outcome = kailing_join(&trees, 1);
        assert!(outcome.pairs.is_empty());
        assert_eq!(
            outcome.stats.ted_calls, 0,
            "degree histograms must prune star-vs-path at tau 1"
        );
    }

    #[test]
    fn kai_is_weaker_than_str_on_reordered_trees() {
        // Sibling reversal: identical histograms (candidates survive KAI)
        // but large TED — KAI must verify what STR would often prune.
        let trees = collection(&["{r{a{x}}{b{y}}{c{z}}}", "{r{c{z}}{b{y}}{a{x}}}"]);
        let kai = kailing_join(&trees, 1);
        assert_eq!(kai.stats.candidates, 1, "histograms cannot see order");
        assert!(kai.pairs.is_empty());
    }
}
